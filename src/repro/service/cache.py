"""Persistent content-addressed result cache.

The farm already mints a stable key for every :class:`~repro.farm.job.Job`
-- a digest over everything that determines the result and nothing that
doesn't.  This module turns that key into the address of an on-disk
record, so a job the farm has ever finished never has to run again:
``mips-serve``, ``mips-farm run --cache``, ``tools/bench_report.py`` and
chaos campaigns all read and write the same directory, and a repeated
corpus sweep is served near-free and byte-identical.

Layout::

    <root>/<kk>/<job-key>.json     # kk = first two hex chars of the key

Each entry stores the record's **stable view** (the run-invariant
fields -- exactly what the aggregate digest covers) plus an integrity
digest over that view.  On read the digest is recomputed; any mismatch,
parse error, or missing field means the entry is *evicted* with a
structured warning and reported as a miss -- a corrupt cache heals
itself by re-executing, it never serves bad bytes.

Only deterministic outcomes are cached: clean completions, guest
faults, and in-machine step-budget timeouts.  Wall-clock timeouts,
worker crashes, harness errors, and wall-clock benchmark measurements
are load-dependent and always re-execute.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional

from ..farm.store import stable_view

#: entry schema version; bump to invalidate every existing entry
CACHE_FORMAT = 1

#: statuses whose records are deterministic and therefore cacheable
CACHEABLE_STATUSES = ("ok", "fault")


def cacheable(record: Mapping[str, Any]) -> bool:
    """True when a record will be bit-identical if the job reruns.

    Guest-level timeouts (the in-machine step budget raising
    ``TimeoutError``) are deterministic; wall-clock timeouts and worker
    crashes are load noise and marked retryable.  Benchmark records
    carry wall-clock measurements, so they are never cached.
    """
    if record.get("retryable"):
        return False
    if record.get("kind") == "bench":
        return False
    status = record.get("status")
    if status in CACHEABLE_STATUSES:
        return True
    if status == "timeout":
        return (record.get("error") or {}).get("type") == "TimeoutError"
    return False


def integrity_digest(view: Mapping[str, Any]) -> str:
    """The digest stored next to (and checked against) a cached view."""
    payload = json.dumps(view, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def hydrate(view: Mapping[str, Any], index: int = 0) -> Dict[str, Any]:
    """A cached stable view re-dressed as a live result record.

    The volatile fields a fresh record would carry are restored with
    cache-hit values, plus ``cached: True`` so consumers can count hits
    -- all of them excluded from the aggregate digest, so a warm run
    and a cold run agree byte-for-byte.
    """
    record = dict(view)
    record["index"] = index
    record["attempt"] = 1
    record["attempts"] = 1
    record["wall_s"] = 0.0
    record["cached"] = True
    return record


@dataclass
class CacheStats:
    """Live counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    rejected: int = 0
    evicted_corrupt: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "rejected": self.rejected,
            "evicted_corrupt": self.evicted_corrupt,
        }


@dataclass
class ResultCache:
    """On-disk result cache addressed by farm job keys."""

    root: str
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        os.makedirs(self.root, exist_ok=True)

    # -- addressing --------------------------------------------------------

    def path_for(self, key: str) -> str:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed job key {key!r}")
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- read side ---------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached stable view for a job key, or None on a miss.

        Any damage -- unparseable JSON, a wrong format version, an
        integrity mismatch -- evicts the entry and reports a miss.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError) as exc:
            self._evict_corrupt(key, path, f"unreadable entry: {exc}")
            return None
        view = entry.get("record") if isinstance(entry, Mapping) else None
        if (
            not isinstance(view, Mapping)
            or entry.get("format") != CACHE_FORMAT
            or entry.get("job_key") != key
        ):
            self._evict_corrupt(key, path, "malformed entry structure")
            return None
        if entry.get("integrity") != integrity_digest(view):
            self._evict_corrupt(key, path, "integrity digest mismatch")
            return None
        self.stats.hits += 1
        return dict(view)

    def fetch(self, job, index: int = 0) -> Optional[Dict[str, Any]]:
        """A hydrated record for a job, or None on a miss."""
        view = self.get(job.key)
        return None if view is None else hydrate(view, index=index)

    def _evict_corrupt(self, key: str, path: str, detail: str) -> None:
        self.stats.evicted_corrupt += 1
        self.stats.misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        print(
            json.dumps(
                {
                    "warning": "evicted-corrupt-cache-entry",
                    "job_key": key,
                    "path": path,
                    "detail": detail,
                },
                sort_keys=True,
            ),
            file=sys.stderr,
        )

    # -- write side --------------------------------------------------------

    def put(self, record: Mapping[str, Any]) -> bool:
        """Cache one result record; returns True if it was stored.

        Non-deterministic records are rejected (see :func:`cacheable`).
        The write is atomic -- a crash mid-``put`` leaves either the old
        entry or no entry, never a torn one.
        """
        if not cacheable(record):
            self.stats.rejected += 1
            return False
        key = record.get("job_key") or record.get("key")
        if not key:
            self.stats.rejected += 1
            return False
        view = stable_view(record)
        entry = {
            "format": CACHE_FORMAT,
            "job_key": key,
            "record": view,
            "integrity": integrity_digest(view),
        }
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return True

    # -- maintenance -------------------------------------------------------

    def keys(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith("."):
                    yield name[: -len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def stats_dict(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = self.stats.to_dict()
        summary["entries"] = len(self)
        summary["root"] = self.root
        return summary
