"""``repro.service`` -- simulation-as-a-service with a persistent result cache.

The farm made execution sharded and fault-tolerant; this subsystem
makes it *memoized*.  Jobs are content-addressed (the farm's stable
``Job.key`` digests), so the dominant traffic pattern at scale --
resubmitting work the system has already done -- never touches a
worker: it is served from an on-disk, integrity-checked result cache
that the HTTP gateway, the offline CLI paths (``mips-farm run
--cache``, ``mips-serve warm``), and the CI gates all share.

Pieces:

- :class:`~repro.service.cache.ResultCache` -- persistent
  content-addressed store of result stable views with an integrity
  digest per entry; corrupt entries self-evict with a structured
  warning and heal by re-execution.
- :class:`~repro.service.gateway.Gateway` -- stdlib-asyncio HTTP/JSON
  server: validates and canonicalizes submitted job specs, enforces
  per-tenant quotas with ``429 + Retry-After``, coalesces concurrent
  duplicate submissions (single-flight), dispatches misses to the farm
  :class:`~repro.farm.scheduler.Scheduler`, and streams deterministic
  JSONL back under write backpressure.
- :class:`~repro.service.client.ServiceClient` -- blocking stdlib
  client used by ``mips-serve submit/status/warm`` and the tests.

Entry points: ``mips-serve`` (``serve`` / ``submit`` / ``status`` /
``warm``) or ``python -m repro.service``.
"""

from .cache import CacheStats, ResultCache, cacheable, hydrate, integrity_digest
from .client import ServiceClient, ServiceError, SubmitResult
from .gateway import DEFAULT_PORT, DEFAULT_QUOTA_JOBS, Gateway, GatewayStats

__all__ = [
    "CacheStats",
    "DEFAULT_PORT",
    "DEFAULT_QUOTA_JOBS",
    "Gateway",
    "GatewayStats",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "SubmitResult",
    "cacheable",
    "hydrate",
    "integrity_digest",
]
