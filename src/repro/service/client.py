"""A small stdlib client for the gateway (used by ``mips-serve`` and tests).

Plain ``http.client`` over TCP -- blocking, dependency-free, and happy
with the gateway's close-delimited JSONL streams: response records are
yielded as they arrive, so a caller can process a long corpus without
holding the whole run in memory.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional

from .gateway import DEFAULT_PORT


class ServiceError(Exception):
    """A non-200 response from the gateway."""

    def __init__(self, status: int, message: str, retry_after: Optional[int] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


@dataclass
class SubmitResult:
    """Headers plus the streamed records of one ``/submit`` call."""

    cache_hits: int
    cache_misses: int
    coalesced: int
    records: List[Dict[str, Any]]
    lines: List[str]


class ServiceClient:
    """One gateway endpoint, one tenant."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        tenant: str = "anon",
        timeout_s: float = 600.0,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str, body: Optional[Mapping[str, Any]] = None):
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        headers = {"X-Tenant": self.tenant}
        payload = None
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
            headers["Content-Length"] = str(len(payload))
        connection.request(method, path, payload, headers)
        response = connection.getresponse()
        if response.status != 200:
            detail = response.read().decode(errors="replace").strip()
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            retry_after = response.getheader("Retry-After")
            connection.close()
            raise ServiceError(
                response.status,
                detail,
                retry_after=int(retry_after) if retry_after else None,
            )
        return connection, response

    def _json(self, method: str, path: str, body: Optional[Mapping[str, Any]] = None):
        connection, response = self._request(method, path, body)
        try:
            return json.loads(response.read().decode())
        finally:
            connection.close()

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._json("GET", "/stats")

    def result(self, key: str) -> Dict[str, Any]:
        """The cached stable view for a job key (404 raises ServiceError)."""
        return self._json("GET", f"/result/{key}")

    def warm(self, workloads: Optional[List[str]] = None, **options) -> Dict[str, Any]:
        body: Dict[str, Any] = dict(options)
        if workloads:
            body["workloads"] = list(workloads)
        return self._json("POST", "/warm", body)

    def submit_stream(self, job_dicts: List[Mapping[str, Any]]) -> Iterator[str]:
        """POST jobs, yield raw JSONL body lines as the gateway streams them.

        Header accounting (hits/misses/coalesced) is exposed by
        :meth:`submit`; this low-level form yields body lines only.
        """
        connection, response = self._request("POST", "/submit", {"jobs": list(job_dicts)})
        try:
            for raw in response:
                line = raw.decode().rstrip("\n")
                if line:
                    yield line
        finally:
            connection.close()

    def submit(self, job_dicts: List[Mapping[str, Any]]) -> SubmitResult:
        """POST jobs, collect the streamed records and cache accounting."""
        connection, response = self._request("POST", "/submit", {"jobs": list(job_dicts)})
        try:
            lines = [raw.decode().rstrip("\n") for raw in response if raw.strip()]
        finally:
            connection.close()
        return SubmitResult(
            cache_hits=int(response.getheader("X-Cache-Hits", "0")),
            cache_misses=int(response.getheader("X-Cache-Misses", "0")),
            coalesced=int(response.getheader("X-Coalesced", "0")),
            records=[json.loads(line) for line in lines],
            lines=lines,
        )
