"""The simulation-as-a-service gateway.

A long-running asyncio HTTP/JSON server in front of :mod:`repro.farm`.
Clients POST farm job specs; the gateway validates and canonicalizes
them into minted :class:`~repro.farm.job.Job` keys and then serves each
one by the cheapest available route:

1. **cache hit** -- the persistent :class:`~repro.service.cache.ResultCache`
   already holds the stable view; no worker is touched.
2. **coalesced** -- an identical job is already executing for another
   request (or earlier in this one); the result is shared, not
   recomputed (single-flight).
3. **miss** -- dispatched to the existing farm
   :class:`~repro.farm.scheduler.Scheduler` (which writes the result
   back into the cache), in a worker thread so the event loop keeps
   serving.

Results stream back as JSONL in submission order, one *stable view*
per line -- the run-invariant record fields, serialized canonically --
so the response bytes are identical whether every line was a hit, a
miss, or a mix, and identical to what ``mips-farm run
--stable-results`` writes for the same jobs.

Flow control is explicit at both edges, after McKenney's bounded-queue
rule (never let an open-ended producer outrun a fixed consumer):

- **admission**: each tenant (the ``X-Tenant`` header) may only have a
  bounded number of jobs executing or queued; a request that would
  exceed it is refused whole with ``429 Too Many Requests`` and a
  ``Retry-After`` header, before any work is registered.
- **streaming**: response lines are written with a small transport
  buffer and awaited drains, so a slow reader suspends its own
  producer coroutine instead of ballooning server memory.

Endpoints::

    GET  /healthz          liveness probe
    GET  /stats            gateway + cache counters (JSON)
    GET  /result/<key>     cached stable view for one job key, or 404
    POST /submit           {"jobs": [job dicts]} -> JSONL stream
    POST /warm             {"workloads": [...], ...} -> summary JSON
"""

from __future__ import annotations

import asyncio
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..farm.job import Job, workload_jobs
from ..farm.store import aggregate, stable_view
from .cache import ResultCache

#: default TCP port (no meaning beyond "unassigned and memorable")
DEFAULT_PORT = 8471
#: default per-tenant bound on jobs executing or queued
DEFAULT_QUOTA_JOBS = 64
#: refuse request bodies carrying more than this many job specs
DEFAULT_MAX_REQUEST_JOBS = 512
#: what a 429 tells the client to wait before retrying
RETRY_AFTER_S = 1
#: transport write-buffer high-water mark; drains past this block the
#: producer coroutine until the client catches up (backpressure)
WRITE_BUFFER_LIMIT = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """Route an error to one JSON response."""

    def __init__(self, code: int, message: str, headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.code = code
        self.headers = headers or {}


class QuotaExceeded(_HttpError):
    def __init__(self, tenant: str, pending: int, wanted: int, quota: int):
        super().__init__(
            429,
            f"tenant {tenant!r} quota exhausted: {pending} jobs in flight, "
            f"{wanted} more requested, quota {quota}",
            headers={"Retry-After": str(RETRY_AFTER_S)},
        )


@dataclass
class GatewayStats:
    """Service-level counters (the ``/stats`` payload)."""

    requests: int = 0
    submitted: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced: int = 0
    executed: int = 0
    rejected_quota: int = 0
    scheduler_runs: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "rejected_quota": self.rejected_quota,
            "scheduler_runs": self.scheduler_runs,
        }


def stable_line(view: Mapping[str, Any]) -> str:
    """One streamed JSONL line (canonical, newline-terminated)."""
    return json.dumps(view, sort_keys=True) + "\n"


class Gateway:
    """One server instance: cache in front, farm scheduler behind."""

    def __init__(
        self,
        cache: ResultCache,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        farm_jobs: int = 1,
        quota_jobs: int = DEFAULT_QUOTA_JOBS,
        max_request_jobs: int = DEFAULT_MAX_REQUEST_JOBS,
        scheduler_factory=None,
        executor_threads: int = 4,
        shard_hosts: Optional[Sequence[str]] = None,
    ):
        self.cache = cache
        self.host = host
        self.port = port
        self.farm_jobs = farm_jobs
        self.quota_jobs = quota_jobs
        self.max_request_jobs = max_request_jobs
        #: HOST:PORT shard specs; when set, batches run on the
        #: distributed farm instead of the local worker pool
        self.shard_hosts = [str(s) for s in shard_hosts] if shard_hosts else []
        self.stats = GatewayStats()
        #: distributed-farm accounting accumulated across batches
        #: (mutated only on the event-loop thread, after the executor
        #: await returns -- never from the worker thread)
        self._farm_totals: Dict[str, int] = {
            "stolen": 0,
            "reclaimed": 0,
            "retries": 0,
            "degraded_serial": 0,
        }
        self._farm_hosts: Dict[str, Dict[str, Any]] = {}
        self._scheduler_factory = scheduler_factory or self._default_scheduler
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="mips-serve"
        )
        #: job key -> future resolving to the job's stable view; the
        #: single-flight registry (one execution per key, many waiters)
        self._inflight: Dict[str, asyncio.Future] = {}
        self._tenant_pending: Dict[str, int] = {}
        self._batch_tasks: set = set()
        self._server: Optional[asyncio.AbstractServer] = None

    def _default_scheduler(self):
        if self.shard_hosts:
            from ..farm.dist import DistScheduler

            return DistScheduler(hosts=self.shard_hosts, cache=self.cache)
        from ..farm.scheduler import Scheduler

        return Scheduler(jobs=self.farm_jobs, cache=self.cache)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._batch_tasks):
            task.cancel()
        self._executor.shutdown(wait=False)

    # -- request plumbing --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        writer.transport.set_write_buffer_limits(high=WRITE_BUFFER_LIMIT)
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ValueError, ConnectionError):
                return
            self.stats.requests += 1
            try:
                await self._route(writer, method, path, headers, body)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.code, {"error": str(exc)}, extra=exc.headers
                )
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # harness bug: report, keep serving
                print(f"mips-serve: internal error: {exc!r}", file=sys.stderr)
                await self._send_json(writer, 500, {"error": repr(exc)})
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("client closed before sending a request")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError(f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(self, writer, method: str, path: str, headers, body: bytes) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {"ok": True})
        elif path == "/stats" and method == "GET":
            await self._send_json(writer, 200, self._stats_payload())
        elif path.startswith("/result/") and method == "GET":
            await self._result(writer, path[len("/result/"):])
        elif path == "/submit" and method == "POST":
            await self._submit(writer, headers, body)
        elif path == "/warm" and method == "POST":
            await self._warm(writer, headers, body)
        elif path in ("/healthz", "/stats", "/submit", "/warm") or path.startswith("/result/"):
            raise _HttpError(405, f"{method} not supported on {path}")
        else:
            raise _HttpError(404, f"unknown endpoint {path}")

    def _stats_payload(self) -> Dict[str, Any]:
        return {
            "gateway": self.stats.to_dict(),
            "cache": self.cache.stats_dict(),
            "inflight": len(self._inflight),
            "tenants": dict(sorted(self._tenant_pending.items())),
            "quota_jobs": self.quota_jobs,
            "farm": {
                **self._farm_totals,
                "shard_hosts": list(self.shard_hosts),
                "hosts": {k: dict(v) for k, v in sorted(self._farm_hosts.items())},
            },
        }

    async def _send_json(self, writer, code: int, obj, extra: Optional[Dict[str, str]] = None):
        payload = (json.dumps(obj, sort_keys=True) + "\n").encode()
        head = [
            f"HTTP/1.1 {code} {_REASONS.get(code, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()

    # -- endpoints ---------------------------------------------------------

    async def _result(self, writer, key: str) -> None:
        try:
            view = self.cache.get(key)
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from exc
        if view is None:
            raise _HttpError(404, f"job {key} is not cached")
        await self._send_json(writer, 200, view)

    def _parse_jobs(self, body: bytes) -> List[Job]:
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") from exc
        specs = payload.get("jobs") if isinstance(payload, Mapping) else None
        if not isinstance(specs, list) or not specs:
            raise _HttpError(400, 'request body must be {"jobs": [job specs...]}')
        if len(specs) > self.max_request_jobs:
            raise _HttpError(
                400, f"{len(specs)} jobs in one request (limit {self.max_request_jobs})"
            )
        jobs = []
        for position, spec in enumerate(specs):
            try:
                jobs.append(Job.from_dict(spec))
            except (KeyError, TypeError, ValueError) as exc:
                raise _HttpError(400, f"jobs[{position}] is invalid: {exc}") from exc
        return jobs

    def _plan(self, tenant: str, jobs: List[Job]):
        """Admission control + single-flight registration, atomically.

        Runs entirely between awaits, so the probe and the registration
        cannot race another request.  Returns the per-job serving plan
        (in submission order) and the hit/miss/coalesce counts; raises
        :class:`QuotaExceeded` with nothing registered if the tenant's
        bound would be exceeded.
        """
        loop = asyncio.get_running_loop()
        entries: List[Tuple[str, Any]] = []
        owned: List[Tuple[Job, asyncio.Future]] = []
        hits = coalesced = 0
        for job in jobs:
            key = job.key
            view = self.cache.get(key)
            if view is not None:
                hits += 1
                entries.append(("hit", view))
                continue
            future = self._inflight.get(key)
            if future is not None:
                coalesced += 1
                entries.append(("wait", future))
                continue
            future = loop.create_future()
            self._inflight[key] = future
            owned.append((job, future))
            entries.append(("wait", future))
        pending = self._tenant_pending.get(tenant, 0)
        if pending + len(owned) > self.quota_jobs:
            for job, _future in owned:
                self._inflight.pop(job.key, None)
            self.stats.rejected_quota += 1
            raise QuotaExceeded(tenant, pending, len(owned), self.quota_jobs)
        self.stats.submitted += len(jobs)
        self.stats.cache_hits += hits
        self.stats.cache_misses += len(owned)
        self.stats.coalesced += coalesced
        if owned:
            self._tenant_pending[tenant] = pending + len(owned)
            self.stats.scheduler_runs += 1
            task = loop.create_task(self._run_batch(tenant, owned))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)
        return entries, {"hits": hits, "misses": len(owned), "coalesced": coalesced}

    async def _run_batch(self, tenant: str, owned: List[Tuple[Job, asyncio.Future]]) -> None:
        """Execute this request's misses as one farm batch, off-loop."""
        loop = asyncio.get_running_loop()
        jobs = [job for job, _future in owned]
        try:
            scheduler = self._scheduler_factory()
            report = await loop.run_in_executor(self._executor, scheduler.run_report, jobs)
            records = report.records
            self._absorb_report(report)
        except Exception as exc:
            for job, future in owned:
                self._inflight.pop(job.key, None)
                if not future.done():
                    future.set_exception(exc)
                else:  # pragma: no cover - future cancelled by a dead client
                    pass
            print(f"mips-serve: batch execution failed: {exc!r}", file=sys.stderr)
        else:
            for (job, future), record in zip(owned, records):
                self._inflight.pop(job.key, None)
                self.stats.executed += 1
                if not future.done():
                    future.set_result(stable_view(record))
        finally:
            remaining = self._tenant_pending.get(tenant, 0) - len(owned)
            if remaining > 0:
                self._tenant_pending[tenant] = remaining
            else:
                self._tenant_pending.pop(tenant, None)

    def _absorb_report(self, report) -> None:
        """Fold one batch's FarmReport into the /stats farm section.

        Called on the event-loop thread after the executor await, so no
        lock is needed against concurrent batches.
        """
        self._farm_totals["stolen"] += report.stolen
        self._farm_totals["reclaimed"] += report.reclaimed
        self._farm_totals["retries"] += report.retries
        if report.degraded_serial:
            self._farm_totals["degraded_serial"] += 1
        for host_id, acct in report.hosts.items():
            totals = self._farm_hosts.setdefault(
                host_id, {"jobs": 0, "stolen": 0, "reclaimed": 0, "retries": 0}
            )
            for counter in ("jobs", "stolen", "reclaimed", "retries"):
                totals[counter] += acct.get(counter, 0)
            totals["workers"] = acct.get("workers")
            totals["alive"] = acct.get("alive")

    async def _submit(self, writer, headers, body: bytes) -> None:
        jobs = self._parse_jobs(body)
        tenant = headers.get("x-tenant", "anon")
        entries, counts = self._plan(tenant, jobs)
        head = [
            "HTTP/1.1 200 OK",
            "Content-Type: application/x-ndjson",
            "Connection: close",
            f"X-Cache-Hits: {counts['hits']}",
            f"X-Cache-Misses: {counts['misses']}",
            f"X-Coalesced: {counts['coalesced']}",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
        for kind, item in entries:
            if kind == "hit":
                view = item
            else:
                # shield: a client hanging up must not cancel the shared
                # future other waiters (and the cache) depend on
                view = await asyncio.shield(item)
            writer.write(stable_line(view).encode())
            await writer.drain()

    async def _warm(self, writer, headers, body: bytes) -> None:
        """Pre-populate the cache for named corpus workloads."""
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") from exc
        from ..workloads import CORPUS, MINIJAVA_CORPUS, QUICK_PROGRAMS

        names = payload.get("workloads") or list(QUICK_PROGRAMS)
        unknown = [n for n in names if n not in CORPUS and n not in MINIJAVA_CORPUS]
        if unknown:
            raise _HttpError(400, f"unknown workloads: {', '.join(unknown)}")
        jobs = list(
            workload_jobs(
                names,
                hazard_mode=payload.get("hazard_mode", "bare"),
                opt_level=payload.get("opt_level", "branch-delay"),
                engine=payload.get("engine", "fast"),
            )
        )
        tenant = headers.get("x-tenant", "anon")
        entries, counts = self._plan(tenant, jobs)
        views = []
        for kind, item in entries:
            views.append(item if kind == "hit" else await asyncio.shield(item))
        summary = aggregate(views)
        await self._send_json(
            writer,
            200,
            {
                "jobs": len(views),
                "hits": counts["hits"],
                "misses": counts["misses"],
                "coalesced": counts["coalesced"],
                "by_status": summary["by_status"],
                "digest": summary["digest"],
            },
        )
