#!/usr/bin/env python
"""Benchmark snapshot and regression gates.

Four subcommands:

``run``
    Executes the housekeeping throughput benchmarks
    (``benchmarks/test_simulator_throughput.py``, one
    ``pytest --benchmark-only`` farm job per benchmark) and writes a
    dated snapshot, ``BENCH_<YYYY-MM-DD>.json``, recording the
    mean/stddev wall time of the simulator, compiler, and kernel-boot
    benchmarks.

``compare``
    Runs the same benchmarks and compares the fresh numbers against the
    most recent committed ``BENCH_*.json`` snapshot (or an explicit
    ``--against FILE``).  Exits non-zero if any benchmark's mean time
    regressed by more than the threshold (default 20%); the failure
    message names the worst-regressing benchmark.

``cycles``
    The deterministic gate.  Simulates the quick corpus under counters
    and compares the per-workload cycle/stall/memory counters against
    the committed ``PERF_BASELINE.json``; any counter growing more than
    2% fails, naming the worst-offending workload and counter.  Cycle
    counts are exact, so this gate is **blocking** in CI while the
    wall-clock ``compare`` gate above is a nightly backstop.

``update-baseline``
    Rewrites ``PERF_BASELINE.json`` from a fresh collection.  Run after
    an intended cycle-count change and commit the diff -- the diff *is*
    the reviewable record of the regression/improvement.

``dispatch`` / ``update-dispatch-baseline``
    The machine-independent throughput floor.  Simulates the quick
    corpus on the JIT engine and gates the per-workload *dispatch
    counts* (per-word handler entries + fused-block entries + reference
    steps, from the engine's deterministic accounting) against the
    committed ``DISPATCH_BASELINE.json``; any workload growing more
    than 2% fails, naming the worst offender.  This is what lets CI
    block on throughput without ever reading a clock -- wall-clock
    benchmarks stay nightly-only.

Benchmark execution goes through :mod:`repro.farm`: each benchmark is
one job with a wall-clock budget and transient-failure retries, and
``--jobs N`` shards them over worker processes (keep the default of 1
for timing fidelity on small machines -- concurrent benchmarks steal
each other's cycles).  The deterministic gates (``cycles``,
``dispatch``) additionally accept ``--cache DIR``: counters are exact
per content-addressed job key, so a repeat gate run against a warm
cache (e.g. one populated by ``mips-serve``) re-simulates nothing.
They also accept ``--host SPEC`` (repeatable): the collection then runs
on the distributed farm's shard hosts, and because the counters are
exact per job key the gate verdict is identical wherever the workloads
simulated.

Usage::

    PYTHONPATH=src python tools/bench_report.py run
    PYTHONPATH=src python tools/bench_report.py compare
    PYTHONPATH=src python tools/bench_report.py compare --against BENCH_2026-08-06.json
    PYTHONPATH=src python tools/bench_report.py cycles
    PYTHONPATH=src python tools/bench_report.py update-baseline
"""

from __future__ import annotations

import argparse
import datetime as _dt
import glob
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILE = os.path.join("benchmarks", "test_simulator_throughput.py")
DEFAULT_THRESHOLD = 0.20
#: generous per-benchmark wall budget; a wedged benchmark is killed,
#: retried once, and reported instead of hanging CI
BENCH_TIMEOUT_S = 900.0

sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def _collect_benchmark_names() -> list:
    """The benchmark test names, in file order (via pytest collection)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        # -o addopts= neutralizes the project's default -q so the node
        # ids (not just a per-file count) are printed
        [sys.executable, "-m", "pytest", BENCH_FILE, "--collect-only", "-q", "-o", "addopts="],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"benchmark collection failed (exit {result.returncode}):\n{result.stdout}{result.stderr}"
        )
    names = []
    for line in result.stdout.splitlines():
        if "::" in line:
            names.append(line.split("::", 1)[1].strip())
    if not names:
        raise SystemExit(f"no benchmarks collected from {BENCH_FILE}")
    return names


def _run_benchmarks(jobs: int = 1) -> dict:
    """Run the throughput benchmarks; return {name: {mean, stddev, rounds}}.

    Each benchmark is submitted as a farm job: isolated interpreter,
    per-job timeout, transient failures retried with backoff.
    """
    from repro.farm import Job, Scheduler

    names = _collect_benchmark_names()
    job_list = [
        Job(
            kind="bench",
            name=name,
            spec={
                "file": BENCH_FILE,
                "cwd": REPO_ROOT,
                "pythonpath": [os.path.join(REPO_ROOT, "src")],
            },
            timeout_s=BENCH_TIMEOUT_S,
        )
        for name in names
    ]
    records = Scheduler(jobs=jobs, max_attempts=2).run(job_list)
    benchmarks = {}
    failed = []
    for record in records:
        if record["status"] != "ok":
            error = record.get("error") or {}
            failed.append(f"{record['name']} [{record['status']}] {error.get('message', '')}")
            continue
        benchmarks[record["name"]] = dict(record["extra"]["bench"])
    if failed:
        raise SystemExit("benchmark run failed:\n" + "\n".join(failed))
    return benchmarks


def _snapshot_paths() -> list:
    return sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))


def format_gate_failure(failures: list, threshold: float) -> str:
    """The regression-gate failure message.

    Names the worst-regressing benchmark explicitly (not just a mean
    delta) so a red CI run says what to look at; the rest follow.
    """
    worst_name, worst_ratio = max(failures, key=lambda item: item[1])
    lines = [
        f"FAIL: worst regression: {worst_name} at {worst_ratio:.0%} of baseline "
        f"(+{(worst_ratio - 1):.0%}, threshold +{threshold:.0%})"
    ]
    others = [(n, r) for n, r in sorted(failures, key=lambda item: -item[1]) if n != worst_name]
    if others:
        lines.append(
            "also regressed: " + ", ".join(f"{name} ({ratio:.2f}x)" for name, ratio in others)
        )
    return "\n".join(lines)


def cmd_run(args: argparse.Namespace) -> int:
    benchmarks = _run_benchmarks(jobs=args.jobs)
    date = args.date or _dt.date.today().isoformat()
    snapshot = {
        "date": date,
        "python": sys.version.split()[0],
        "benchmarks": benchmarks,
    }
    out_path = os.path.join(REPO_ROOT, f"BENCH_{date}.json")
    with open(out_path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(out_path, REPO_ROOT)}")
    for name, stats in sorted(benchmarks.items()):
        print(f"  {name}: {stats['mean_s'] * 1e3:.1f} ms")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    if args.against:
        base_path = args.against
        if not os.path.exists(base_path):
            raise SystemExit(f"baseline snapshot not found: {base_path}")
    else:
        snapshots = _snapshot_paths()
        if not snapshots:
            print("no BENCH_*.json snapshot to compare against; skipping gate")
            return 0
        base_path = snapshots[-1]
    with open(base_path) as fh:
        baseline = json.load(fh)["benchmarks"]
    print(f"baseline: {os.path.relpath(base_path, REPO_ROOT)}")
    current = _run_benchmarks(jobs=args.jobs)

    failures = []
    for name, stats in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"  {name}: {stats['mean_s'] * 1e3:.1f} ms (new, no baseline)")
            continue
        ratio = stats["mean_s"] / base["mean_s"] if base["mean_s"] else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures.append((name, ratio))
        print(
            f"  {name}: {stats['mean_s'] * 1e3:.1f} ms vs "
            f"{base['mean_s'] * 1e3:.1f} ms ({ratio:.0%} of baseline) {verdict}"
        )
    if failures:
        print(format_gate_failure(failures, args.threshold))
        return 1
    print("benchmark gate passed")
    return 0


def _gate_cache(args):
    """The persistent result cache for the deterministic gates, if asked.

    Counters and dispatch counts are exact per job key, so a warm cache
    serves a repeated gate run without re-simulating a single workload
    -- CI and local pre-commit loops share the directory.
    """
    if not getattr(args, "cache", None):
        return None
    from repro.service.cache import ResultCache

    return ResultCache(args.cache)


PERF_BASELINE = os.path.join(REPO_ROOT, "PERF_BASELINE.json")


def cmd_cycles(args: argparse.Namespace) -> int:
    from repro.perf import baseline as perf_baseline

    current = perf_baseline.collect_cycles(
        jobs=args.jobs, cache=_gate_cache(args), hosts=args.host
    )
    for name, counters in current.items():
        print(f"  {name}: {counters['cycles']} cycles, {counters['load_stalls']} stalls")
    gate_path = args.gate or PERF_BASELINE
    if not os.path.exists(gate_path):
        print(f"no baseline at {os.path.relpath(gate_path, REPO_ROOT)}; skipping gate")
        return 0
    baseline = perf_baseline.load_baseline(gate_path)
    threshold = args.threshold if args.threshold is not None else baseline.get(
        "threshold", perf_baseline.DEFAULT_THRESHOLD
    )
    regressions = perf_baseline.compare(baseline, current, threshold)
    print(perf_baseline.render_gate(regressions, threshold), end="")
    return 1 if regressions else 0


def cmd_update_baseline(args: argparse.Namespace) -> int:
    from repro.perf import baseline as perf_baseline

    current = perf_baseline.collect_cycles(jobs=args.jobs)
    perf_baseline.write_baseline(PERF_BASELINE, current)
    print(f"wrote {os.path.relpath(PERF_BASELINE, REPO_ROOT)}")
    for name, counters in current.items():
        print(f"  {name}: {counters['cycles']} cycles")
    return 0


DISPATCH_BASELINE = os.path.join(REPO_ROOT, "DISPATCH_BASELINE.json")


def cmd_dispatch(args: argparse.Namespace) -> int:
    """The machine-independent throughput floor.

    Wall-clock throughput is proportional to how many dispatches the
    engine pays per workload, and -- unlike wall clock -- the dispatch
    count under the JIT engine is exactly reproducible on any machine.
    Any workload whose count grows past the threshold fails, naming the
    worst offender.
    """
    from repro.perf import baseline as perf_baseline

    current = perf_baseline.collect_dispatch(
        jobs=args.jobs, cache=_gate_cache(args), hosts=args.host
    )
    for name, counters in current.items():
        print(f"  {name}: {counters['dispatches']} dispatches, {counters['ref_steps']} ref steps")
    gate_path = args.gate or DISPATCH_BASELINE
    if not os.path.exists(gate_path):
        print(f"no baseline at {os.path.relpath(gate_path, REPO_ROOT)}; skipping gate")
        return 0
    baseline = perf_baseline.load_baseline(gate_path)
    threshold = args.threshold if args.threshold is not None else baseline.get(
        "threshold", perf_baseline.DEFAULT_THRESHOLD
    )
    regressions = perf_baseline.compare(baseline, current, threshold)
    print(
        perf_baseline.render_gate(
            regressions,
            threshold,
            gate_name="dispatch gate",
            refresh_command="python tools/bench_report.py update-dispatch-baseline",
        ),
        end="",
    )
    return 1 if regressions else 0


def cmd_update_dispatch_baseline(args: argparse.Namespace) -> int:
    from repro.perf import baseline as perf_baseline

    current = perf_baseline.collect_dispatch(jobs=args.jobs)
    perf_baseline.write_baseline(
        DISPATCH_BASELINE, current, counters=perf_baseline.DISPATCH_COUNTERS
    )
    print(f"wrote {os.path.relpath(DISPATCH_BASELINE, REPO_ROOT)}")
    for name, counters in current.items():
        print(f"  {name}: {counters['dispatches']} dispatches")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run benchmarks, write BENCH_<date>.json")
    run_p.add_argument("--date", help="override the snapshot date stamp")
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="farm workers (default 1; parallel benchmarks perturb timings)",
    )
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="run benchmarks, gate vs last snapshot")
    cmp_p.add_argument("--against", help="explicit baseline snapshot path")
    cmp_p.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max tolerated slowdown fraction (default 0.20)",
    )
    cmp_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="farm workers (default 1; parallel benchmarks perturb timings)",
    )
    cmp_p.set_defaults(func=cmd_compare)

    cyc_p = sub.add_parser("cycles", help="deterministic counter gate vs PERF_BASELINE.json")
    cyc_p.add_argument("--gate", help="explicit baseline path (default PERF_BASELINE.json)")
    cyc_p.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="max tolerated counter growth fraction (default: baseline's, 0.02)",
    )
    cyc_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="farm workers (counters are deterministic; parallelism is free here)",
    )
    cyc_p.add_argument(
        "--cache",
        metavar="DIR",
        help="persistent result cache: repeat gate runs are served without "
        "re-simulating (counters are content-addressed by job key)",
    )
    cyc_p.add_argument(
        "--host",
        action="append",
        default=[],
        metavar="SPEC",
        help="collect on the distributed farm shard host at HOST:PORT "
        "(repeatable; counters and gate verdict are identical either way)",
    )
    cyc_p.set_defaults(func=cmd_cycles)

    upd_p = sub.add_parser("update-baseline", help="rewrite PERF_BASELINE.json from a fresh run")
    upd_p.add_argument("--jobs", type=int, default=1)
    upd_p.set_defaults(func=cmd_update_baseline)

    dis_p = sub.add_parser(
        "dispatch", help="deterministic dispatch-count gate vs DISPATCH_BASELINE.json"
    )
    dis_p.add_argument("--gate", help="explicit baseline path (default DISPATCH_BASELINE.json)")
    dis_p.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="max tolerated dispatch growth fraction (default: baseline's, 0.02)",
    )
    dis_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="farm workers (dispatch counts are deterministic; parallelism is free here)",
    )
    dis_p.add_argument(
        "--cache",
        metavar="DIR",
        help="persistent result cache: repeat gate runs are served without "
        "re-simulating (dispatch counts are content-addressed by job key)",
    )
    dis_p.add_argument(
        "--host",
        action="append",
        default=[],
        metavar="SPEC",
        help="collect on the distributed farm shard host at HOST:PORT "
        "(repeatable; dispatch counts and gate verdict are identical either way)",
    )
    dis_p.set_defaults(func=cmd_dispatch)

    dup_p = sub.add_parser(
        "update-dispatch-baseline",
        help="rewrite DISPATCH_BASELINE.json from a fresh run",
    )
    dup_p.add_argument("--jobs", type=int, default=1)
    dup_p.set_defaults(func=cmd_update_dispatch_baseline)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
