#!/usr/bin/env python
"""Benchmark snapshot and regression gate.

Two subcommands:

``run``
    Executes the housekeeping throughput benchmarks
    (``benchmarks/test_simulator_throughput.py`` via
    ``pytest --benchmark-only``) and writes a dated snapshot,
    ``BENCH_<YYYY-MM-DD>.json``, recording the mean/stddev wall time of
    the simulator, compiler, and kernel-boot benchmarks.

``compare``
    Runs the same benchmarks and compares the fresh numbers against the
    most recent committed ``BENCH_*.json`` snapshot (or an explicit
    ``--against FILE``).  Exits non-zero if any benchmark's mean time
    regressed by more than the threshold (default 20%).

Usage::

    PYTHONPATH=src python tools/bench_report.py run
    PYTHONPATH=src python tools/bench_report.py compare
    PYTHONPATH=src python tools/bench_report.py compare --against BENCH_2026-08-06.json
"""

from __future__ import annotations

import argparse
import datetime as _dt
import glob
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILE = os.path.join("benchmarks", "test_simulator_throughput.py")
DEFAULT_THRESHOLD = 0.20


def _run_benchmarks() -> dict:
    """Run the throughput benchmarks; return {name: {mean, stddev, rounds}}."""
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = os.path.join(tmp, "benchmark.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
        )
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            BENCH_FILE,
            "--benchmark-only",
            "-q",
            f"--benchmark-json={raw_path}",
        ]
        result = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if result.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {result.returncode})")
        with open(raw_path) as fh:
            raw = json.load(fh)
    benchmarks = {}
    for entry in raw["benchmarks"]:
        stats = entry["stats"]
        benchmarks[entry["name"]] = {
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
    return benchmarks


def _snapshot_paths() -> list:
    return sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))


def cmd_run(args: argparse.Namespace) -> int:
    benchmarks = _run_benchmarks()
    date = args.date or _dt.date.today().isoformat()
    snapshot = {
        "date": date,
        "python": sys.version.split()[0],
        "benchmarks": benchmarks,
    }
    out_path = os.path.join(REPO_ROOT, f"BENCH_{date}.json")
    with open(out_path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(out_path, REPO_ROOT)}")
    for name, stats in sorted(benchmarks.items()):
        print(f"  {name}: {stats['mean_s'] * 1e3:.1f} ms")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    if args.against:
        base_path = args.against
        if not os.path.exists(base_path):
            raise SystemExit(f"baseline snapshot not found: {base_path}")
    else:
        snapshots = _snapshot_paths()
        if not snapshots:
            print("no BENCH_*.json snapshot to compare against; skipping gate")
            return 0
        base_path = snapshots[-1]
    with open(base_path) as fh:
        baseline = json.load(fh)["benchmarks"]
    print(f"baseline: {os.path.relpath(base_path, REPO_ROOT)}")
    current = _run_benchmarks()

    failures = []
    for name, stats in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"  {name}: {stats['mean_s'] * 1e3:.1f} ms (new, no baseline)")
            continue
        ratio = stats["mean_s"] / base["mean_s"] if base["mean_s"] else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures.append((name, ratio))
        print(
            f"  {name}: {stats['mean_s'] * 1e3:.1f} ms vs "
            f"{base['mean_s'] * 1e3:.1f} ms ({ratio:.0%} of baseline) {verdict}"
        )
    if failures:
        worst = ", ".join(f"{name} ({ratio:.2f}x)" for name, ratio in failures)
        print(f"FAIL: >{args.threshold:.0%} regression: {worst}")
        return 1
    print("benchmark gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run benchmarks, write BENCH_<date>.json")
    run_p.add_argument("--date", help="override the snapshot date stamp")
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="run benchmarks, gate vs last snapshot")
    cmp_p.add_argument("--against", help="explicit baseline snapshot path")
    cmp_p.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max tolerated slowdown fraction (default 0.20)",
    )
    cmp_p.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
