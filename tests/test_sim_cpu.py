"""The CPU core: pipeline semantics, exceptions, privilege, segmentation."""

import pytest

from repro.asm import assemble
from repro.isa.bits import u32
from repro.sim import (
    Cpu,
    HazardMode,
    HazardViolation,
    Machine,
    OverflowTrap,
    PageFault,
    PhysicalMemory,
    PrivilegeViolation,
    TrapInstruction,
    run_source,
)


def run(source, **kwargs):
    return run_source(source, **kwargs)


class TestDelayedBranches:
    def test_taken_branch_executes_slot(self):
        machine = run(
            """
            start:  mov #1, r1
                    jmp skip
                    mov #2, r1      ; delay slot: executes
                    mov #3, r1      ; skipped
            skip:   trap #1
                    trap #0
            """
        )
        assert machine.output == [2]

    def test_not_taken_branch_continues(self):
        machine = run(
            """
            start:  mov #1, r1
                    beq r1, #0, nowhere
                    mov #4, r1
                    trap #1
                    trap #0
            nowhere: mov #9, r1
                    trap #1
                    trap #0
            """
        )
        assert machine.output == [4]

    def test_indirect_jump_two_slots(self):
        machine = run(
            """
            start:  lim target, r2
                    jmpr r2
                    mov #1, r1      ; slot 1
                    add r1, #1, r1  ; slot 2
                    mov #9, r1      ; skipped
            target: trap #1
                    trap #0
            """
        )
        assert machine.output == [2]

    def test_branch_in_delay_slot_of_branch(self):
        # a jump in a jump's delay slot: the second jump's own slot is
        # the FIRST jump's target (the next instruction fetched), so the
        # executed stream is: jmp a, jmp b, nop(at a), trap(at b) -- the
        # mov at address 2 is dead code and r1 stays 0
        machine = run(
            """
            start:  jmp a
                    jmp b
                    mov #7, r1      ; never reached
            a:      nop
            b:      trap #1
                    trap #0
            """
        )
        assert machine.output == [0]

    def test_jal_links_past_delay_slot(self):
        machine = run(
            """
            start:  jal sub
                    nop
                    trap #1         ; return lands here
                    trap #0
            sub:    mov #5, r1
                    jmpr ra
                    nop
                    nop
            """
        )
        assert machine.output == [5]


class TestLoadDelay:
    SOURCE = """
            start:  mov #7, r1
                    ld @val, r1
                    mov r1, r2      ; delay slot: stale in bare mode
                    mov r1, r3
                    mov r2, r1
                    trap #1
                    mov r3, r1
                    trap #1
                    trap #0
            val:    .word 42
    """

    def test_bare_mode_reads_stale_value(self):
        machine = run(self.SOURCE, hazard_mode=HazardMode.BARE)
        assert machine.output == [7, 42]

    def test_checked_mode_raises(self):
        with pytest.raises(HazardViolation):
            run(self.SOURCE, hazard_mode=HazardMode.CHECKED)

    def test_interlocked_mode_stalls_and_forwards(self):
        machine = run(self.SOURCE, hazard_mode=HazardMode.INTERLOCKED)
        assert machine.output == [42, 42]
        assert machine.stats.load_stalls == 1
        assert machine.stats.cycles == machine.stats.words + 1

    def test_write_after_load_not_clobbered(self):
        machine = run(
            """
            start:  ld @val, r1
                    mov #9, r1      ; writes r1 after the load lands
                    mov r1, r1
                    trap #1
                    trap #0
            val:    .word 42
            """
        )
        assert machine.output == [9]

    def test_load_then_store_of_same_register(self):
        # the store in the delay slot reads the OLD value (bare mode)
        machine = run(
            """
            start:  mov #7, r1
                    ld @val, r1
                    st r1, @out     ; stale 7
                    ld @out, r1
                    nop
                    trap #1
                    trap #0
            val:    .word 42
            out:    .word 0
            """
        )
        assert machine.output == [7]


class TestInterlockedBranches:
    def test_taken_branch_annuls_slot(self):
        machine = run(
            """
            start:  mov #1, r1
                    jmp skip
                    mov #2, r1      ; annulled by interlock hardware
            skip:   trap #1
                    trap #0
            """,
            hazard_mode=HazardMode.INTERLOCKED,
        )
        assert machine.output == [1]
        assert machine.stats.branch_flush_cycles == 1


class TestArithmeticTraps:
    def test_overflow_raises_when_enabled(self):
        source = """
        start:  lim #1048575, r1
                sll r1, #11, r1
                add r1, r1, r2
                trap #0
        """
        machine = Machine(assemble(source))
        machine.cpu.surprise.overflow_traps_enabled = True
        with pytest.raises(OverflowTrap):
            machine.run()

    def test_overflow_silent_when_disabled(self):
        machine = run(
            """
            start:  lim #1048575, r1
                    sll r1, #11, r1
                    add r1, r1, r2
                    trap #0
            """
        )
        assert machine.halted


class TestPrivilege:
    def test_user_cannot_touch_surprise(self):
        source = "start: rdspec surprise, r1\ntrap #0"
        machine = Machine(assemble(source))
        machine.cpu.surprise.supervisor = False
        with pytest.raises(PrivilegeViolation):
            machine.run()

    def test_user_can_write_lo(self):
        source = """
        start:  mov #2, r1
                mov r1, lo
                movi #171, r2
                ic r2, r3
                mov r3, r1
                trap #1
                trap #0
        """
        machine = Machine(assemble(source))
        machine.cpu.surprise.supervisor = False
        machine.run()
        assert machine.output == [0xAB << 16]


class TestSegmentation:
    def make_cpu(self, seg_mask=4, pid=3):
        cpu = Cpu(PhysicalMemory(1 << 22))
        cpu.seg_mask = seg_mask
        cpu.seg_pid = pid
        return cpu

    def test_low_region_translates(self):
        cpu = self.make_cpu()
        space = cpu.process_space_words
        assert cpu.translate(0) == 3 * space
        assert cpu.translate(100) == 3 * space + 100

    def test_high_region_translates_to_top_of_window(self):
        cpu = self.make_cpu()
        space = cpu.process_space_words
        assert cpu.translate(u32(-1)) == 3 * space + space - 1

    def test_between_regions_faults(self):
        cpu = self.make_cpu()
        half = cpu.process_space_words // 2
        with pytest.raises(PageFault):
            cpu.translate(half)  # just past the low region
        with pytest.raises(PageFault):
            cpu.translate(1 << 30)  # the dead middle

    def test_space_sizes(self):
        cpu = self.make_cpu(seg_mask=0)
        assert cpu.process_space_words == 16 * 1024 * 1024  # full 16M words
        cpu.seg_mask = 8
        assert cpu.process_space_words == 65536  # the 65K minimum


class TestSurpriseSequence:
    def test_trap_vectors_to_zero(self):
        source = """
        start:  .org 100
                trap #7
        """
        machine = Machine(assemble("  .org 100\nstart: trap #7\nnop"))
        cpu = machine.cpu
        cpu.vectored_exceptions = True
        cpu.surprise.supervisor = False
        cpu.step()
        assert cpu.pc == 0
        assert cpu.surprise.supervisor
        assert not cpu.surprise.interrupts_enabled
        assert cpu.surprise.minor_cause == 7
        assert cpu.xra[0] == 101  # resume after the trap

    def test_return_addresses_capture_branch_stream(self):
        source = """
        start:  lim target, r2
                jmpr r2
                nop
                trap #9
                nop
        target: nop
                nop
        """
        machine = Machine(assemble(source))
        cpu = machine.cpu
        cpu.vectored_exceptions = True
        cpu.step()  # lim
        cpu.step()  # jmpr (2 delay slots)
        cpu.step()  # slot 1 (nop)
        cpu.step()  # slot 2: trap -> surprise
        target = machine.program.symbol("target")
        # resume: after the trap comes the jump target
        assert cpu.xra == [target, target + 1, target + 2]

    def test_rfs_resumes_interrupted_stream(self):
        source = """
        start:  mov #1, r1
                add r1, #1, r1
                add r1, #1, r1
                trap #1
                trap #0
        """
        machine = Machine(assemble(source))
        cpu = machine.cpu
        cpu.step()
        # fake an interrupt arriving before the second add
        cpu.vectored_exceptions = True
        from repro.sim.faults import InterruptRequest

        cpu._take_fault(InterruptRequest())
        assert cpu.pc == 0
        # kernel-style return
        cpu.surprise.restore_previous  # (the rfs path does this itself)
        from repro.isa.pieces import Rfs
        from repro.isa.words import InstructionWord
        from repro.isa.encoding import encode

        machine.memory.poke(0, encode(InstructionWord.single(Rfs()), 0))
        cpu.step()  # rfs
        cpu.vectored_exceptions = False
        machine.run()
        assert machine.output == [3]


class TestStats:
    def test_free_cycles_counted(self):
        machine = run(
            """
            start:  mov #1, r1
                    ld @val, r2
                    nop
                    trap #0
            val:    .word 9
            """
        )
        stats = machine.stats
        # words: mov, ld, nop, trap -> one uses memory
        assert stats.memory_cycles_used == 1
        assert stats.free_memory_cycles == stats.words - 1

    def test_piece_and_noop_counts(self):
        machine = run("start: nop\nmov #1, r1\ntrap #0")
        assert machine.stats.noops == 1
