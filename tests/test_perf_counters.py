"""Counter-group correctness: exact values from hand-assembled programs.

Every expected number below is hand-derived from the program text (and
the machine's delayed-branch/one-delay-slot semantics), then asserted
on **both** execution engines -- the counter layer's core contract is
that an attached profiler observes identical data under either one.
"""

import pytest

from repro.asm import assemble
from repro.perf import Profiler, collect, merge_groups, stable_groups
from repro.perf.counters import classify_word
from repro.sim import HazardMode, Machine

ENGINES = (True, False)
ENGINE_IDS = ("fast", "precise")


def _run(source, mode=HazardMode.BARE, fast=True):
    machine = Machine(assemble(source), hazard_mode=mode)
    profiler = Profiler().attach(machine.cpu)
    machine.run(10_000, fast=fast)
    return machine, profiler, stable_groups(collect(machine.cpu))


# one of each piece class, each executed exactly once
STRAIGHT = """
start:  mov #1, r1
        add #2, r1, r2
        add #5, r2, r3
        movi #100, r4
        lim #1000, r5
        st r1, @buf
        ld @buf, r6
        nop
        trap #0
buf:    .word 0
"""

# the bne's delay slot holds the halting trap, so every word runs once
LOOP = """
start:  mov #5, r1
loop:   sub r1, #1, r1
        bne r1, #0, loop
        trap #0
"""

# two structurally identical zero-test compares, both preceded by an
# ALU add that writes the tested register; only the first may count as
# CC-saveable, because `check` is a direct jump target (a join point,
# where Table 3's accounting says the codes can't be trusted)
TARGET_JOIN = """
start:  add #1, r0, r1
        add #1, r1, r1
        beq r1, #0, end
        jmp check
        nop
check:  beq r1, #0, end
end:    trap #0
"""


@pytest.mark.parametrize("fast", ENGINES, ids=ENGINE_IDS)
class TestExactCounts:
    def test_straight_line_mix(self, fast):
        _, _, groups = _run(STRAIGHT, fast=fast)
        assert groups["pipeline"] == {
            "cycles": 9,
            "words": 9,
            "pieces": 8,
            "noops": 1,
            "pieces_per_word": 0.889,
            "load_stalls": 0,
            "branch_flush_cycles": 0,
            "exceptions": 0,
        }
        assert groups["mix"] == {
            "add": 2,
            "lim": 1,
            "load": 1,
            "mov": 1,
            "movi": 1,
            "nop": 1,
            "store": 1,
            "trap": 1,
        }

    def test_straight_line_table1_buckets(self, fast):
        _, _, groups = _run(STRAIGHT, fast=fast)
        imm = groups["immediates"]
        # #1 -> ONE, #2 -> TWO, #5 -> SMALL, #100 -> BYTE, #1000 -> LARGE;
        # memory addresses and the trap code are not operand constants
        assert imm["1"] == 1 and imm["2"] == 1 and imm["3 - 15"] == 1
        assert imm["16 - 255"] == 1 and imm["> 255"] == 1 and imm["0"] == 0
        assert imm["total"] == 5
        assert imm["imm4_coverage_pct"] == 60.0
        assert imm["movi_coverage_pct"] == 80.0

    def test_loop_cc_savings(self, fast):
        _, _, groups = _run(LOOP, fast=fast)
        control = groups["control"]
        # the single executed bne zero-tests r1, freshly written by the
        # sub one word earlier: a condition code would have covered it
        assert control["branches"] == 1 and control["branches_taken"] == 1
        assert control["compares_executed"] == 1
        assert control["cc_saved_by_operators"] == 1
        assert control["cc_savings_operators_pct"] == 100.0

    def test_branch_target_join_excluded(self, fast):
        _, _, groups = _run(TARGET_JOIN, fast=fast)
        control = groups["control"]
        assert control["compares_executed"] == 2
        # first beq: saveable; second beq: same shape but a jump target
        assert control["cc_saved_by_operators"] == 1
        assert control["cc_savings_operators_pct"] == 50.0

    def test_memory_free_cycles(self, fast):
        machine, _, groups = _run(STRAIGHT, fast=fast)
        memory = groups["memory"]
        assert memory["loads"] == 1 and memory["stores"] == 1
        assert memory["memory_cycles_used"] == 2
        assert memory["free_memory_cycles"] == 7     # 9 words - 2 used
        assert memory["fetches"] == machine.stats.words


class TestEngineIdentity:
    @pytest.mark.parametrize("source", [STRAIGHT, LOOP, TARGET_JOIN])
    def test_stable_groups_identical(self, source):
        results = [_run(source, fast=fast)[2] for fast in ENGINES]
        assert results[0] == results[1]

    def test_engine_group_differs_but_is_excluded(self):
        machine, _, _ = _run(LOOP, fast=True)
        groups = collect(machine.cpu)
        assert groups["engine"]["fastpath_bursts"] > 0
        assert "engine" not in stable_groups(groups)


class TestStallAttribution:
    STALLY = """
start:  mov #3, r1
loop:   ld @val, r2
        add r2, #1, r3
        sub r1, #1, r1
        bne r1, #0, loop
        nop
        trap #0
val:    .word 7
"""

    @pytest.mark.parametrize("fast", ENGINES, ids=ENGINE_IDS)
    def test_interlocked_charges_reconcile(self, fast):
        """Attributed cycles account for every counted cycle, exactly."""
        machine, profiler, _ = _run(self.STALLY, mode=HazardMode.INTERLOCKED, fast=fast)
        stats = machine.stats
        assert sum(profiler.counts.values()) == stats.words
        assert sum(profiler.stall_cycles.values()) == stats.load_stalls == 3
        assert sum(profiler.flush_cycles.values()) == stats.branch_flush_cycles == 2
        assert profiler.total_cycles == stats.cycles == 20

    def test_charges_land_on_the_paying_words(self):
        _, profiler, _ = _run(self.STALLY, mode=HazardMode.INTERLOCKED, fast=True)
        # the add at word 2 consumes r2 in its load delay -> stalls
        # there; the bne at word 4 flushes its slot when taken
        assert profiler.stall_cycles == {2: 3}
        assert profiler.flush_cycles == {4: 2}

    def test_attribution_identical_across_engines(self):
        profs = [
            _run(self.STALLY, mode=HazardMode.INTERLOCKED, fast=fast)[1] for fast in ENGINES
        ]
        assert profs[0].counts == profs[1].counts
        assert profs[0].stall_cycles == profs[1].stall_cycles
        assert profs[0].flush_cycles == profs[1].flush_cycles


class TestClassifyWord:
    def test_mov_filler_operand_not_counted(self):
        machine = Machine(assemble("start: mov #1, r1\n trap #0"))
        machine.run(10)
        profile = classify_word(machine.cpu.fetch(0))
        assert profile.ops == {"mov": 1}
        assert sum(profile.imm.values()) == 1   # only s1; the filler s2 is not a constant

    def test_noops_separate_from_pieces(self):
        machine = Machine(assemble("start: nop\n trap #0"))
        machine.run(10)
        profile = classify_word(machine.cpu.fetch(0))
        assert profile.noops == 1 and profile.pieces == 0


class TestMergeGroups:
    def test_merge_equals_single_run_of_concatenation(self):
        """Summed shards re-derive the same ratios a monolithic run gets."""
        groups = [_run(LOOP, fast=True)[2], _run(STRAIGHT, fast=True)[2]]
        merged = merge_groups(groups)
        assert merged["pipeline"]["words"] == 4 + 9
        assert merged["immediates"]["total"] == 3 + 5
        # 6 of 8 constants fit imm4 across the two programs
        assert merged["immediates"]["imm4_coverage_pct"] == 75.0
        assert merged["control"]["compares_executed"] == 1
        assert merged["control"]["cc_savings_operators_pct"] == 100.0

    def test_merge_is_order_independent(self):
        groups = [_run(LOOP, fast=True)[2], _run(STRAIGHT, fast=True)[2]]
        assert merge_groups(groups) == merge_groups(list(reversed(groups)))
