"""The service layer: persistent result cache + HTTP gateway.

The contracts under test:

- the cache is content-addressed on farm job keys, integrity-checked,
  and **self-healing**: any corrupt entry is evicted with a warning and
  the job simply re-executes -- bad bytes are never served;
- a warm run and a cold run agree byte-for-byte on the aggregate
  digest, on every engine tier;
- the gateway serves hits without dispatching, coalesces concurrent
  duplicate submissions into one farm execution (single-flight),
  refuses quota-busting requests with 429 + Retry-After, and keeps
  serving while a slow client drains a stream (backpressure);
- only deterministic outcomes are cached (wall-clock noise re-executes).
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.farm import Job, ResultStore, Scheduler, aggregate, workload_jobs
from repro.farm.store import stable_view
from repro.service import (
    Gateway,
    ResultCache,
    ServiceClient,
    ServiceError,
    cacheable,
    hydrate,
    integrity_digest,
)

#: a guest program that halts after one instruction -- the cheapest
#: possible farm job, used to keep gateway tests fast
HALT_ASM = "start:  trap #0\n        nop\n"

#: cheap corpus members (tens of thousands of cycles, not millions)
FAST_WORKLOADS = ("scanner", "logic")


def tiny_jobs(n, **spec_extra):
    """n distinct one-instruction asm jobs (distinct content keys)."""
    return [
        Job(kind="asm", name=f"tiny{i}", spec={"source": HALT_ASM, "n": i, **spec_extra})
        for i in range(n)
    ]


def fast_scheduler(**kwargs):
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return Scheduler(**kwargs)


# ---------------------------------------------------------------------------
# the cache itself


class TestResultCache:
    def test_roundtrip_serves_stable_view(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        (record,) = fast_scheduler(jobs=1, cache=cache).run(tiny_jobs(1))
        assert cache.stats.stores == 1
        view = cache.get(record["job_key"])
        assert view == stable_view(record)
        assert "wall_s" not in view and "index" not in view

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.get("deadbeefdeadbeef") is None
        assert cache.stats.misses == 1

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with pytest.raises(ValueError):
            cache.get("../../etc/passwd")

    def test_corrupt_entry_evicted_with_warning(self, tmp_path, capsys):
        cache = ResultCache(str(tmp_path / "cache"))
        (record,) = fast_scheduler(jobs=1, cache=cache).run(tiny_jobs(1))
        key = record["job_key"]
        path = cache.path_for(key)
        with open(path, "w") as handle:
            handle.write("{ not json at all")
        assert cache.get(key) is None
        warning = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert warning["warning"] == "evicted-corrupt-cache-entry"
        assert warning["job_key"] == key
        assert cache.stats.evicted_corrupt == 1
        import os

        assert not os.path.exists(path)

    def test_integrity_mismatch_evicted(self, tmp_path, capsys):
        cache = ResultCache(str(tmp_path / "cache"))
        (record,) = fast_scheduler(jobs=1, cache=cache).run(tiny_jobs(1))
        key = record["job_key"]
        path = cache.path_for(key)
        with open(path) as handle:
            entry = json.load(handle)
        entry["record"]["cycles"] = entry["record"]["cycles"] + 1  # tampered
        with open(path, "w") as handle:
            json.dump(entry, handle)
        assert cache.get(key) is None
        assert "integrity digest mismatch" in capsys.readouterr().err
        # the eviction healed the cache: a re-run repopulates it
        (again,) = fast_scheduler(jobs=1, cache=cache).run(tiny_jobs(1))
        assert stable_view(again) == stable_view(record)
        assert cache.get(key) == stable_view(record)

    def test_hydrated_record_digests_like_a_fresh_one(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        (record,) = fast_scheduler(jobs=1, cache=cache).run(tiny_jobs(1))
        hydrated = hydrate(cache.get(record["job_key"]), index=0)
        assert hydrated["cached"] is True
        assert stable_view(hydrated) == stable_view(record)
        assert aggregate([hydrated])["digest"] == aggregate([record])["digest"]

    def test_integrity_digest_is_canonical(self):
        assert integrity_digest({"b": 1, "a": 2}) == integrity_digest({"a": 2, "b": 1})


class TestCacheability:
    def test_deterministic_outcomes_are_cacheable(self):
        assert cacheable({"status": "ok", "kind": "workload"})
        assert cacheable({"status": "fault", "kind": "asm"})
        # in-machine step budget: deterministic guest timeout
        assert cacheable(
            {"status": "timeout", "kind": "asm", "error": {"type": "TimeoutError"}}
        )

    def test_load_noise_is_not_cacheable(self):
        assert not cacheable({"status": "ok", "kind": "workload", "retryable": True})
        assert not cacheable(
            {"status": "timeout", "kind": "asm", "error": {"type": "WallTimeout"}}
        )
        assert not cacheable({"status": "crash", "kind": "workload"})
        assert not cacheable({"status": "error", "kind": "source"})
        # wall-clock measurements must re-run even when they succeeded
        assert not cacheable({"status": "ok", "kind": "bench"})

    def test_error_record_not_stored(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        bad = Job(kind="source", name="broken", spec={"source": "not pascal"})
        (record,) = fast_scheduler(jobs=1, cache=cache).run([bad])
        assert record["status"] == "error"
        assert cache.stats.stores == 0
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# the farm scheduler with a cache attached


class TestCachedScheduler:
    def test_cold_then_warm_digest_identity(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = workload_jobs(FAST_WORKLOADS)
        fresh = fast_scheduler(jobs=1).run(jobs)
        cold = fast_scheduler(jobs=1, cache=cache).run_report(jobs)
        warm = fast_scheduler(jobs=1, cache=cache).run_report(jobs)
        assert (cold.cache_hits, cold.cache_misses) == (0, len(jobs))
        assert (warm.cache_hits, warm.cache_misses) == (len(jobs), 0)
        digests = {
            aggregate(records)["digest"]
            for records in (fresh, cold.records, warm.records)
        }
        assert len(digests) == 1

    @pytest.mark.parametrize("engine", ["precise", "fast", "jit"])
    def test_digest_identity_per_engine(self, tmp_path, engine):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = workload_jobs(["scanner"], engine=engine)
        cold = fast_scheduler(jobs=1, cache=cache).run(jobs)
        warm = fast_scheduler(jobs=1, cache=cache).run(jobs)
        assert aggregate(cold)["digest"] == aggregate(warm)["digest"]

    def test_warm_run_never_dispatches(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = tiny_jobs(3)
        fast_scheduler(jobs=1, cache=cache).run(jobs)

        def boom(*args, **kwargs):
            raise AssertionError("a cache hit must not reach the executor")

        monkeypatch.setattr("repro.farm.scheduler.execute_job", boom)
        report = fast_scheduler(jobs=1, cache=cache).run_report(jobs)
        assert report.cache_hits == 3
        assert all(r["cached"] for r in report.records)

    def test_cache_hits_stream_to_the_store(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = tiny_jobs(2)
        fast_scheduler(jobs=1, cache=cache).run(jobs)
        path = str(tmp_path / "results.jsonl")
        with ResultStore(path) as store:
            fast_scheduler(jobs=1, cache=cache, store=store).run(jobs)
        loaded = ResultStore.load(path)
        assert len(loaded) == 2
        assert all(r["cached"] for r in loaded)

    def test_sharded_warm_run_matches_serial(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = workload_jobs(FAST_WORKLOADS)
        fast_scheduler(jobs=1, cache=cache).run(jobs)
        warm = fast_scheduler(jobs=2, cache=cache).run_report(jobs)
        assert warm.cache_hits == len(jobs)
        fresh = fast_scheduler(jobs=2).run(jobs)
        assert aggregate(warm.records)["digest"] == aggregate(fresh)["digest"]


class TestFarmCacheCli:
    def test_mips_farm_run_cache_flag(self, tmp_path, capsys):
        from repro.cli import farm_main

        cache_dir = str(tmp_path / "cache")
        argv = [
            "run",
            "--workload",
            "scanner",
            "--cache",
            cache_dir,
            "--stable-results",
        ]
        assert farm_main(argv + [str(tmp_path / "cold.jsonl")]) == 0
        cold_out = capsys.readouterr().out
        assert farm_main(argv + [str(tmp_path / "warm.jsonl")]) == 0
        warm_out = capsys.readouterr().out
        assert "1 cache hits / 0 misses" in warm_out
        assert "(cached)" in warm_out
        assert "0 cache hits / 1 misses" in cold_out
        with open(tmp_path / "cold.jsonl") as a, open(tmp_path / "warm.jsonl") as b:
            assert a.read() == b.read()

    def test_stable_results_match_digest(self, tmp_path):
        from repro.cli import farm_main

        path = tmp_path / "stable.jsonl"
        assert farm_main(
            ["run", "--workload", "scanner", "--stable-results", str(path)]
        ) == 0
        (line,) = [l for l in path.read_text().splitlines() if l]
        view = json.loads(line)
        assert "wall_s" not in view
        (direct,) = fast_scheduler(jobs=1).run(workload_jobs(["scanner"]))
        assert view == stable_view(direct)

    def test_bench_report_gates_accept_cache(self, tmp_path):
        from repro.perf.baseline import collect_cycles

        cache = ResultCache(str(tmp_path / "cache"))
        cold = collect_cycles(names=["scanner"], cache=cache)
        warm = collect_cycles(names=["scanner"], cache=cache)
        assert cold == warm
        assert cache.stats.hits == 1


# ---------------------------------------------------------------------------
# the gateway


class GatewayHarness:
    """One live gateway on an ephemeral port, loop in a daemon thread."""

    def __init__(self, tmp_path, **kwargs):
        self.cache = kwargs.pop("cache", None) or ResultCache(str(tmp_path / "gw-cache"))
        self.gateway = Gateway(cache=self.cache, port=0, **kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.gateway.start(), self.loop).result(10)

    @property
    def port(self):
        return self.gateway.port

    def client(self, tenant="anon"):
        return ServiceClient(port=self.port, tenant=tenant, timeout_s=30.0)

    def close(self):
        asyncio.run_coroutine_threadsafe(self.gateway.close(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(5)


@pytest.fixture
def gateway_factory(tmp_path):
    live = []

    def make(**kwargs):
        harness = GatewayHarness(tmp_path, **kwargs)
        live.append(harness)
        return harness

    yield make
    for harness in live:
        harness.close()


def counting_factory(cache, calls, delay_s=0.0):
    """A scheduler factory that records every batch it executes."""

    def factory():
        class _Recording(Scheduler):
            # run_report is the primitive (run delegates to it, and the
            # gateway calls it directly for the farm accounting)
            def run_report(self, jobs):
                calls.append([job.key for job in jobs])
                if delay_s:
                    time.sleep(delay_s)
                return super().run_report(jobs)

        return _Recording(jobs=1, cache=cache)

    return factory


class TestGateway:
    def test_miss_then_hit_byte_identical(self, gateway_factory):
        harness = gateway_factory()
        client = harness.client()
        jobs = [job.to_dict() for job in tiny_jobs(3)]
        first = client.submit(jobs)
        assert (first.cache_hits, first.cache_misses) == (0, 3)
        second = client.submit(jobs)
        assert (second.cache_hits, second.cache_misses) == (3, 0)
        assert first.lines == second.lines
        assert aggregate(first.records)["digest"] == aggregate(second.records)["digest"]
        stats = client.stats()["gateway"]
        assert stats["executed"] == 3
        assert stats["scheduler_runs"] == 1  # the second pass dispatched nothing

    def test_results_stream_in_submission_order(self, gateway_factory):
        harness = gateway_factory()
        result = harness.client().submit([job.to_dict() for job in tiny_jobs(4)])
        assert [r["name"] for r in result.records] == [f"tiny{i}" for i in range(4)]

    def test_result_endpoint_and_corruption_eviction(self, gateway_factory):
        harness = gateway_factory()
        client = harness.client()
        (record,) = client.submit([job.to_dict() for job in tiny_jobs(1)]).records
        key = record["job_key"]
        assert client.result(key) == record
        with open(harness.cache.path_for(key), "w") as handle:
            handle.write("garbage")
        with pytest.raises(ServiceError) as excinfo:
            client.result(key)
        assert excinfo.value.status == 404
        assert client.stats()["cache"]["evicted_corrupt"] == 1
        # the eviction healed the path: resubmission re-executes, same bytes
        (again,) = client.submit([job.to_dict() for job in tiny_jobs(1)]).records
        assert again == record

    def test_invalid_submissions_rejected(self, gateway_factory):
        harness = gateway_factory()
        client = harness.client()
        with pytest.raises(ServiceError) as excinfo:
            client.submit([{"kind": "nonsense", "name": "x"}])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit([{"name": "missing-kind"}])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/submit", {"not-jobs": []})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/no/such/endpoint")
        assert excinfo.value.status == 404

    def test_quota_exhaustion_returns_429_with_retry_after(self, gateway_factory):
        harness = gateway_factory(quota_jobs=2)
        client = harness.client(tenant="greedy")
        with pytest.raises(ServiceError) as excinfo:
            client.submit([job.to_dict() for job in tiny_jobs(3)])
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1
        assert harness.gateway.stats.rejected_quota == 1
        # nothing leaked into the single-flight registry
        assert len(harness.gateway._inflight) == 0
        # a request inside the bound still succeeds
        assert len(client.submit([job.to_dict() for job in tiny_jobs(2)]).records) == 2

    def test_quota_is_per_tenant(self, gateway_factory, tmp_path):
        calls = []
        cache = ResultCache(str(tmp_path / "quota-cache"))
        harness = gateway_factory(
            cache=cache,
            quota_jobs=2,
            scheduler_factory=counting_factory(cache, calls, delay_s=0.8),
        )
        background = []
        thread = threading.Thread(
            target=lambda: background.append(
                harness.client(tenant="alpha").submit(
                    [job.to_dict() for job in tiny_jobs(2)]
                )
            )
        )
        thread.start()
        deadline = time.time() + 5.0
        while harness.gateway._tenant_pending.get("alpha", 0) < 2:
            assert time.time() < deadline, "batch never registered"
            time.sleep(0.01)
        # alpha is at its bound: one more alpha job is refused...
        extra = Job(kind="asm", name="extra", spec={"source": HALT_ASM, "n": 99})
        with pytest.raises(ServiceError) as excinfo:
            harness.client(tenant="alpha").submit([extra.to_dict()])
        assert excinfo.value.status == 429
        # ...but tenant beta is unaffected by alpha's backlog
        beta = harness.client(tenant="beta").submit([extra.to_dict()])
        assert len(beta.records) == 1
        thread.join(10)
        assert background[0].cache_misses == 2

    def test_concurrent_duplicate_submissions_single_flight(
        self, gateway_factory, tmp_path
    ):
        calls = []
        cache = ResultCache(str(tmp_path / "sf-cache"))
        harness = gateway_factory(
            cache=cache, scheduler_factory=counting_factory(cache, calls, delay_s=0.5)
        )
        job = Job(kind="asm", name="shared", spec={"source": HALT_ASM})
        results = {}

        def submit(tag, tenant):
            results[tag] = harness.client(tenant=tenant).submit([job.to_dict()])

        first = threading.Thread(target=submit, args=("a", "alpha"))
        second = threading.Thread(target=submit, args=("b", "beta"))
        first.start()
        deadline = time.time() + 5.0
        while job.key not in harness.gateway._inflight:
            assert time.time() < deadline, "first submission never registered"
            time.sleep(0.01)
        second.start()
        first.join(10)
        second.join(10)
        # one farm execution total, both callers got the record
        assert calls == [[job.key]]
        assert results["a"].records == results["b"].records
        assert results["a"].cache_misses == 1
        assert results["b"].coalesced == 1
        assert harness.gateway.stats.executed == 1

    def test_backpressure_slow_client_does_not_stall_the_server(self, gateway_factory):
        harness = gateway_factory()
        jobs = [job.to_dict() for job in tiny_jobs(8)]
        body = json.dumps({"jobs": jobs}).encode()
        request = (
            f"POST /submit HTTP/1.1\r\nHost: gw\r\nContent-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body
        with socket.create_connection(("127.0.0.1", harness.port), timeout=30) as sock:
            sock.sendall(request)
            chunks = []
            probed = False
            while True:
                data = sock.recv(128)  # tiny reads: the client is the bottleneck
                if not data:
                    break
                chunks.append(data)
                if not probed and len(chunks) >= 3:
                    # mid-stream, a healthy client must still be served
                    assert harness.client().healthz() == {"ok": True}
                    probed = True
                time.sleep(0.005)
        assert probed
        payload = b"".join(chunks)
        _, _, streamed = payload.partition(b"\r\n\r\n")
        lines = [line for line in streamed.decode().splitlines() if line]
        assert len(lines) == 8
        assert [json.loads(line)["name"] for line in lines] == [
            f"tiny{i}" for i in range(8)
        ]

    def test_warm_endpoint_populates_cache(self, gateway_factory):
        harness = gateway_factory()
        client = harness.client()
        first = client.warm(["scanner"])
        assert (first["hits"], first["misses"]) == (0, 1)
        second = client.warm(["scanner"])
        assert (second["hits"], second["misses"]) == (1, 0)
        assert first["digest"] == second["digest"]
        with pytest.raises(ServiceError) as excinfo:
            client.warm(["no-such-workload"])
        assert excinfo.value.status == 400


class TestServeCli:
    def test_submit_without_server_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import serve_main

        # a port nothing listens on: connection refused, exit 2
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = serve_main(
            ["submit", "--port", str(free_port), "--workload", "scanner"]
        )
        assert code == 2
        assert "cannot reach gateway" in capsys.readouterr().err

    def test_warm_subcommand_offline(self, tmp_path, capsys):
        from repro.cli import serve_main

        cache_dir = str(tmp_path / "warm-cache")
        argv = ["warm", "--cache", cache_dir, "--workload", "scanner"]
        assert serve_main(argv) == 0
        first = capsys.readouterr().out
        assert "1 jobs, 0 already cached, 1 executed" in first
        assert serve_main(argv) == 0
        second = capsys.readouterr().out
        assert "1 jobs, 1 already cached, 0 executed" in second
        assert first.split("digest")[1] == second.split("digest")[1]
