"""Superblock JIT tests: discovery boundaries, invalidation, tiers.

The fusion tier (:mod:`repro.sim.jit`) must be invisible in every
architectural observable: the three engines (reference stepper, threaded
fast path, fast path + JIT) produce bit-identical registers, memory,
output, statistics, and profiles.  These tests pin the discovery rules
(where a superblock is allowed to end), the invalidation paths
(self-modifying stores, external/DMA writes, page-map changes), the
determinism of the dispatch counters, and the per-PC tier report.
"""

from dataclasses import asdict

import pytest

from repro.asm.assembler import assemble
from repro.compiler import compile_source
from repro.reorg import OptLevel
from repro.sim import HazardMode, Machine, state_fingerprint
from repro.sim import jit as jit_mod
from repro.system.mapping import PageMap
from repro.workloads import CORPUS

#: low enough that small test loops cross it within one burst flush
HOT = 16


def _jit_machine(source, **kwargs):
    """Machine with the JIT armed at a test-friendly heat threshold."""
    machine = Machine(assemble(source), **kwargs)
    machine.cpu.fastpath().enable_jit(threshold=HOT)
    return machine


def _assert_identical(a, b):
    assert state_fingerprint(a.cpu) == state_fingerprint(b.cpu)
    assert a.output == b.output
    assert a.char_output == b.char_output
    assert a.memory._words == b.memory._words
    astats, bstats = a.memory.stats, b.memory.stats
    assert (astats.reads, astats.writes, astats.fetches) == (
        bstats.reads,
        bstats.writes,
        bstats.fetches,
    )


# ---------------------------------------------------------------------------
# three-tier differential: jit == fast == precise on the corpus
# ---------------------------------------------------------------------------

PROGRAMS = ("sort", "scanner", "fib_iterative")
MODES = (HazardMode.BARE, HazardMode.CHECKED, HazardMode.INTERLOCKED)


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("name", PROGRAMS)
def test_differential_jit_corpus(name, mode):
    """JIT tier agrees with the plain fast path on the workload corpus."""
    opt = OptLevel.NONE if mode is HazardMode.INTERLOCKED else OptLevel.BRANCH_DELAY
    program = compile_source(CORPUS[name], opt_level=opt).program
    machines = []
    for jit in (True, False):
        machine = Machine(program, hazard_mode=mode, inputs=[7, 3, 9])
        if jit:
            machine.cpu.fastpath().enable_jit(threshold=HOT)
        machine.run(60_000_000, fast=True)
        machines.append(machine)
    _assert_identical(*machines)


# ---------------------------------------------------------------------------
# a loop that actually fuses and runs through its superblock
# ---------------------------------------------------------------------------

HOT_LOOP_SOURCE = """
        start:  mov #0, r3
        outer:  mov #0, r1
                lim #100, r2
        loop:   add r1, #1, r1
                blo r1, r2, loop
                nop
                trap #1
                add r3, #1, r3
                blo r3, #5, outer
                nop
                trap #0
"""


def test_hot_loop_fuses_and_enters():
    """The hot loop crosses the threshold, fuses, and executes fused."""
    machine = _jit_machine(HOT_LOOP_SOURCE)
    machine.run()
    engine = machine.cpu.fastpath()
    assert machine.output == [100] * 5
    assert engine.stats.block_compiles >= 1
    assert engine.stats.block_entries >= 1
    assert engine.stats.fused_words >= 2
    # the fused loop is [loop, blo, nop] rooted at the back-edge target
    entry = machine.program.symbol("loop")
    (ctx,) = engine._contexts.values()
    assert entry in ctx.blocks
    assert ctx.blocks[entry].pcs == (entry, entry + 1, entry + 2)


def test_jit_run_equals_plain_fast_run():
    reference = Machine(assemble(HOT_LOOP_SOURCE))
    reference.run(fast=True)
    jitted = _jit_machine(HOT_LOOP_SOURCE)
    jitted.run(fast=True)
    _assert_identical(jitted, reference)


def test_engine_stats_deterministic_across_runs():
    """Two identical jit runs produce identical dispatch accounting."""
    runs = []
    for _ in range(2):
        machine = _jit_machine(HOT_LOOP_SOURCE)
        machine.run()
        runs.append(asdict(machine.cpu.fastpath().stats))
    assert runs[0] == runs[1]
    assert runs[0]["block_entries"] > 0


# ---------------------------------------------------------------------------
# discovery boundaries
# ---------------------------------------------------------------------------


def _discover_pcs(machine, entry):
    """Run the discovery walk rooted at ``entry``; member addresses."""
    engine = machine.cpu.fastpath()
    (ctx,) = engine._contexts.values()
    members = jit_mod._discover(engine, ctx, entry, engine._base_env())
    return [pc for pc, _, _ in members or ()]


STRAIGHT_SOURCE = """
        start:  add r0, #1, r1
                add r1, #1, r2
                add r2, #1, r3
                add r3, #1, r4
                add r4, #1, r5
                add r5, #1, r6
                add r6, #1, r7
                add r7, #1, r8
                trap #0
"""


def test_discovery_splits_at_branch_targets():
    """A block never spans another branch target: jumps may land there."""
    machine = _jit_machine(STRAIGHT_SOURCE)
    machine.run()
    engine = machine.cpu.fastpath()
    start = machine.program.symbol("start")
    engine._branch_targets.add(start)
    engine._branch_targets.add(start + 3)
    assert _discover_pcs(machine, start) == [start, start + 1, start + 2]


def test_discovery_splits_at_traps():
    """Reference-stepper words (traps) end the block before them."""
    machine = _jit_machine(STRAIGHT_SOURCE)
    machine.run()
    engine = machine.cpu.fastpath()
    start = machine.program.symbol("start")
    engine._branch_targets.add(start)
    # the full straight run: all eight adds, never the trap word
    assert _discover_pcs(machine, start) == list(range(start, start + 8))


PAGE_CROSS_SOURCE = """
        .org 250
        start:  add r0, #1, r1
                add r1, #1, r2
                add r2, #1, r3
                add r3, #1, r4
                add r4, #1, r5
                add r5, #1, r6
                add r6, #1, r7
                add r7, #1, r8
                trap #0
"""


def test_discovery_never_crosses_a_page_boundary():
    """Fusion stops at the 256-word page edge (mapping granularity)."""
    machine = _jit_machine(PAGE_CROSS_SOURCE)
    machine.run()
    engine = machine.cpu.fastpath()
    engine._branch_targets.add(250)
    assert _discover_pcs(machine, 250) == [250, 251, 252, 253, 254, 255]


def test_short_straight_runs_are_not_fused():
    """A non-looping block below MIN_STRAIGHT_WORDS cannot pay for its
    own entry overhead, so build_block declines it."""
    machine = _jit_machine(STRAIGHT_SOURCE)
    machine.run()
    engine = machine.cpu.fastpath()
    (ctx,) = engine._contexts.values()
    start = machine.program.symbol("start")
    engine._branch_targets.add(start)
    engine._branch_targets.add(start + 4)  # caps the run at 4 words
    assert jit_mod.build_block(engine, ctx, start) is None


# ---------------------------------------------------------------------------
# invalidation: self-modifying stores, external (DMA) writes, remaps
# ---------------------------------------------------------------------------

SMC_OUTSIDE_SOURCE = """
        start:  mov #0, r5
                ld @patch, r9
                nop
        outer:  mov #0, r1
                lim #50, r4
        loop:   add r1, #1, r1
                add r1, #0, r6
        tgt:    add r6, #0, r7
                blo r1, r4, loop
                nop
                add r7, #0, r1
                trap #1
                st r9, @tgt
                add r5, #1, r5
                blo r5, #4, outer
                nop
                trap #0
        patch:  .word 0
"""


def test_store_into_fused_region_invalidates_block():
    """A store over a fused member drops the block; semantics follow the
    patched instruction exactly as on the other engines."""
    program = assemble(SMC_OUTSIDE_SOURCE)
    # patch tgt from `add r6, #0, r7` to a copy of the word before it
    # (`add r1, #0, r6` -> r7 keeps its stale value, visibly changing
    # the output stream after the first outer pass)
    patched_bits = program.memory[program.symbol("loop") + 1]
    machines = []
    for fast, jit in ((True, True), (True, False), (False, False)):
        machine = Machine(program)
        if jit:
            machine.cpu.fastpath().enable_jit(threshold=HOT)
        machine.memory.poke(program.symbol("patch"), patched_bits)
        machine.run(fast=fast)
        machines.append(machine)
    jitted, fast_m, ref_m = machines
    _assert_identical(jitted, fast_m)
    _assert_identical(fast_m, ref_m)
    stats = jitted.cpu.fastpath().stats
    assert stats.block_compiles >= 1
    assert stats.block_invalidations >= 1


SMC_INSIDE_SOURCE = """
        start:  ld @patch, r2
                nop
                mov #0, r1
                lim #60, r4
        loop:   add r1, #1, r1
        tgt:    add r1, #0, r3
                st r2, @tgt
                blo r1, r4, loop
                nop
                add r3, #0, r1
                trap #1
                trap #0
        patch:  .word 0
"""


def test_store_fused_inside_its_own_block_exits_via_epoch():
    """A fused store hitting the block's own region must stop the block
    before any stale member runs (the epoch check), then re-fuse."""
    program = assemble(SMC_INSIDE_SOURCE)
    # store rewrites tgt with its own original bits: semantically a
    # no-op, but each write invalidates the compiled word and block
    original_bits = program.memory[program.symbol("tgt")]
    machines = []
    for jit in (True, False):
        machine = Machine(program)
        if jit:
            machine.cpu.fastpath().enable_jit(threshold=HOT)
        machine.memory.poke(program.symbol("patch"), original_bits)
        machine.run(fast=True)
        machines.append(machine)
    jitted, plain = machines
    assert jitted.output == [60]
    _assert_identical(jitted, plain)
    stats = jitted.cpu.fastpath().stats
    assert stats.block_invalidations >= 1
    assert jitted.cpu.fastpath()._block_epoch[0] >= 1


def test_external_write_drops_block_mid_run():
    """A watch-hook write (the DMA/loader path) lands mid-run: the block
    is dropped and execution continues bit-identical to never-JIT."""
    program = assemble(HOT_LOOP_SOURCE)
    entry = program.symbol("loop")
    pause = 700  # mid-run boundary: past the first fused outer pass
    machines = []
    for jit in (True, False):
        machine = Machine(program)
        if jit:
            machine.cpu.fastpath().enable_jit(threshold=HOT)
        machine.run_steps(pause, fast=True)
        # rewrite a block member with its own bits through poke: value-
        # identical, but it must still invalidate (address-based check)
        machine.memory.poke(entry, program.memory[entry])
        machine.run(fast=True)
        machines.append(machine)
    jitted, plain = machines
    _assert_identical(jitted, plain)
    engine = jitted.cpu.fastpath()
    assert engine.stats.block_compiles >= 2  # dropped once, re-fused
    assert engine.stats.block_invalidations >= 1


def test_pagemap_change_drops_all_blocks():
    """A page-map mutation conservatively flushes every fused block."""
    machine = _jit_machine(HOT_LOOP_SOURCE)
    engine = machine.cpu.fastpath()
    machine.run_steps(700, fast=True)
    (ctx,) = engine._contexts.values()
    assert ctx.blocks, "precondition: a block fused before the remap"
    pagemap = PageMap()
    pagemap.change_hook = engine._on_pagemap_change  # as MappedMemory wires it
    pagemap.map_page(3, 7)
    assert not ctx.blocks
    assert not engine._block_members
    assert engine.stats.block_invalidations >= 1
    # execution resumes on per-word handlers and stays exact
    machine.run(fast=True)
    plain = Machine(machine.program)
    plain.run(fast=True)
    _assert_identical(machine, plain)


# ---------------------------------------------------------------------------
# tier reporting
# ---------------------------------------------------------------------------


def test_tier_reports_fused_threaded_interpreted():
    machine = _jit_machine(HOT_LOOP_SOURCE)
    machine.run()
    engine = machine.cpu.fastpath()
    loop = machine.program.symbol("loop")
    assert engine.tier(loop) == "fused"
    assert engine.tier(loop + 1) == "fused"
    assert engine.tier(machine.program.symbol("start")) == "threaded"
    assert engine.tier(0x3FFF) == "interpreted"  # never executed


def test_profile_tiers_are_opt_in():
    """Profiles carry tier keys only when explicitly requested, so
    farm/corpus profiles stay byte-identical across engines."""
    from repro.perf import Profiler, build_profile

    machine = _jit_machine(HOT_LOOP_SOURCE)
    Profiler().attach(machine.cpu)
    machine.run()
    plain = build_profile(machine.cpu, machine.program)
    assert all("tier" not in entry for entry in plain["hot"])
    tiered = build_profile(machine.cpu, machine.program, tiers=True)
    assert any(entry.get("tier") == "fused" for entry in tiered["hot"])
    # identical apart from the annotation
    for entry in tiered["hot"]:
        entry.pop("tier", None)
    assert tiered == plain
