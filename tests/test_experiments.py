"""The experiment harness: every table and figure runs and holds its shape."""

import pytest

from repro.experiments import REGISTRY
from repro.experiments.figures import figure1, figure2, figure3, figure4
from repro.experiments.tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table9,
    table10,
    table11,
)


class TestFiguresExact:
    """Figures 1-3 reproduce the paper's numbers *exactly*."""

    def test_figure1(self):
        rows = figure1().rows
        assert rows["full evaluation: static"] == 8
        assert rows["full evaluation: avg executed"] == 7.0
        assert rows["full evaluation: branches executed"] == 2.0
        assert rows["early-out: static"] == 6
        assert rows["early-out: avg executed"] == 4.25

    def test_figure2(self):
        rows = figure2().rows
        assert rows["static instructions"] == 5
        assert rows["dynamic instructions"] == 5.0
        assert rows["branches"] == 0.0

    def test_figure3(self):
        rows = figure3().rows
        assert rows["static instructions"] == 3
        assert rows["dynamic instructions"] == 3.0
        assert rows["branches"] == 0

    def test_figure4_monotone(self):
        rows = figure4().rows
        counts = [
            rows["none: static words"],
            rows["reorganize: static words"],
            rows["pack: static words"],
            rows["branch-delay: static words"],
        ]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] < counts[0]


class TestTableShapes:
    def test_table1_coverage_claims(self):
        rows = table1().rows
        assert rows["4-bit coverage %"] > 60
        assert rows["4+8-bit coverage %"] > 90

    def test_table2_matches_paper_taxonomy(self):
        result = table2()
        assert result.rows["MIPS"].startswith("no condition code")
        assert result.rows["VAX"].startswith("set on moves")

    def test_table3_savings_small(self):
        rows = table3().rows
        assert rows["saved % (operators only)"] < 5.0
        assert rows["saved % (operators and moves)"] < 25.0

    def test_table4_jump_dominates(self):
        rows = table4().rows
        assert rows["expressions ending in jumps %"] > rows["expressions ending in stores %"]

    def test_table5_matches_paper(self):
        result = table5()
        for key, value in result.paper.items():
            assert result.rows[key] == value, key

    def test_table9_matches_paper(self):
        result = table9()
        for key, value in result.paper.items():
            assert result.rows[key] == value, key

    def test_table10_word_addressing_wins(self):
        rows = table10().rows
        for allocation in ("word-allocated", "byte-allocated"):
            low, high = rows[f"{allocation}: byte addressing penalty %"]
            assert high > 0

    def test_table11_every_program_improves_monotonically(self):
        rows = table11().rows
        for name in ("Fibbonacci", "Puzzle 0", "Puzzle 1"):
            counts = [
                rows[f"{name} / none"],
                rows[f"{name} / reorganize"],
                rows[f"{name} / pack"],
                rows[f"{name} / branch-delay"],
            ]
            assert counts == sorted(counts, reverse=True), name
            assert rows[f"{name} / total improvement %"] > 5.0


class TestHarness:
    def test_registry_is_complete(self):
        expected = {f"table{i}" for i in range(1, 12)} | {
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "free_cycles",
        }
        assert set(REGISTRY) == expected

    def test_render_includes_paper_values(self):
        text = table5().render()
        assert "paper" in text

    @pytest.mark.parametrize(
        "name", ["table2", "table5", "table9", "figure1", "figure2", "figure3"]
    )
    def test_cheap_experiments_run(self, name):
        result = REGISTRY[name]()
        assert result.rows
