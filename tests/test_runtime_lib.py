"""The runtime library: software multiply and divide against Python oracles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.isa.bits import s32, u32
from repro.sim import HazardMode, Machine, TrapInstruction
from repro.compiler.runtime import DIVMOD_SOURCE, MUL_SOURCE

HARNESS = """
start:  lim #{a}, r2
        lim #{b}, r3
        jal {routine}
        nop
        mov {result}, r1
        trap #1
        trap #0
"""

BIG_HARNESS = """
start:  lim #{a_high}, r2
        sll r2, #8, r2
        sll r2, #8, r2
        lim #{a_low}, r4
        or r2, r4, r2
        lim #{b_high}, r3
        sll r3, #8, r3
        sll r3, #8, r3
        lim #{b_low}, r4
        or r3, r4, r3
        jal {routine}
        nop
        mov {result}, r1
        trap #1
        trap #0
"""


def call_runtime(routine, a, b, result_reg):
    # runtime sources carry *sequential* semantics: they must pass
    # through the reorganizer (which owns delay-slot management), just
    # as the compiler driver does
    from repro.asm import assemble_pieces
    from repro.reorg import OptLevel, reorganize

    a32, b32 = u32(a), u32(b)
    source = BIG_HARNESS.format(
        a_high=(a32 >> 16) & 0xFFFF,
        a_low=a32 & 0xFFFF,
        b_high=(b32 >> 16) & 0xFFFF,
        b_low=b32 & 0xFFFF,
        routine=routine,
        result=result_reg,
    )
    body = MUL_SOURCE if routine == "__mul" else DIVMOD_SOURCE
    stream = assemble_pieces(source + body)
    program = reorganize(stream, OptLevel.BRANCH_DELAY).to_program(entry_symbol="start")
    machine = Machine(program, hazard_mode=HazardMode.CHECKED)
    machine.run(50_000)
    return machine.output[0]


class TestMultiply:
    @pytest.mark.parametrize(
        "a,b", [(0, 0), (1, 1), (3, 7), (0, 99), (1000, 1000), (-3, 7), (7, -3), (-5, -5)]
    )
    def test_basic(self, a, b):
        assert call_runtime("__mul", a, b, "r1") == s32(u32(a * b))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(-(1 << 31), (1 << 31) - 1), st.integers(-(1 << 31), (1 << 31) - 1))
    def test_matches_modular_product(self, a, b):
        assert call_runtime("__mul", a, b, "r1") == s32(u32(a * b))


def pascal_div(a, b):
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def pascal_mod(a, b):
    return a - pascal_div(a, b) * b


class TestDivMod:
    @pytest.mark.parametrize(
        "a,b",
        [
            (7, 2), (100, 7), (-100, 7), (100, -7), (-100, -7),
            (0, 5), (5, 5), (4, 5), (1 << 30, 3), (-(1 << 30), 3),
        ],
    )
    def test_quotient(self, a, b):
        assert call_runtime("__divmod", a, b, "r1") == pascal_div(a, b)

    @pytest.mark.parametrize(
        "a,b", [(7, 2), (100, 7), (-100, 7), (100, -7), (-100, -7), (0, 5)]
    )
    def test_remainder(self, a, b):
        assert call_runtime("__divmod", a, b, "r4") == pascal_mod(a, b)

    def test_divide_by_zero_traps(self):
        with pytest.raises(TrapInstruction) as info:
            call_runtime("__divmod", 1, 0, "r1")
        assert info.value.code == 5

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(-(1 << 30), (1 << 30) - 1),
        st.integers(-(1 << 15), (1 << 15) - 1).filter(lambda v: v != 0),
    )
    def test_div_identity(self, a, b):
        quotient = call_runtime("__divmod", a, b, "r1")
        remainder = call_runtime("__divmod", a, b, "r4")
        assert quotient * b + remainder == a
        assert abs(remainder) < abs(b)
