"""Observability end-to-end: farm export, CLI, chaos differential, tracing.

The chaos differential test closes the loop on the layer's central
claim: if two executions are architecturally equivalent (equal
``state_fingerprint``), an attached profiler must have observed
byte-identical counter groups -- even when the run took faults from
injected chaos along the way.
"""

import json

from repro.asm import assemble
from repro.chaos import injection, make_plan, run_plan
from repro.chaos.campaigns import _counting_source
from repro.cli import prof_main
from repro.farm import ResultStore, Scheduler, aggregate
from repro.farm.job import profile_jobs
from repro.perf import Profiler, collect, stable_groups
from repro.sim import Machine, state_fingerprint
from repro.sim.tracing import trace
from repro.system.kernel import Kernel


class TestFarmProfileExport:
    NAMES = ("sort", "calc", "strings")

    def _records(self, jobs):
        return Scheduler(jobs=jobs).run(profile_jobs(self.NAMES, top=10))

    def test_records_carry_profiles(self):
        for record in self._records(jobs=1):
            assert record["status"] == "ok"
            profile = record["extra"]["profile"]
            assert profile["name"] == record["name"]
            assert len(profile["hot"]) <= 10
            assert profile["counters"]["pipeline"]["cycles"] == record["cycles"]
            assert "engine" not in profile["counters"]

    def test_profiles_identical_across_sharding(self):
        serial = {r["name"]: r["extra"]["profile"] for r in self._records(jobs=1)}
        sharded = {r["name"]: r["extra"]["profile"] for r in self._records(jobs=2)}
        assert serial == sharded

    def test_profiles_flow_through_result_store(self, tmp_path):
        path = str(tmp_path / "profiles.jsonl")
        store = ResultStore(path)
        try:
            Scheduler(jobs=2, store=store).run(profile_jobs(self.NAMES, top=5))
        finally:
            store.close()
        records = ResultStore.load(path)
        assert sorted(r["name"] for r in records) == sorted(self.NAMES)
        for record in records:
            assert record["extra"]["profile"]["hot"]
        # profile jobs aggregate like any other job (stable digest)
        assert aggregate(records)["digest"]

    def test_profile_jobs_keyed_separately_from_plain_runs(self):
        from repro.farm.job import workload_jobs

        plain = workload_jobs(["sort"])[0]
        profiled = profile_jobs(["sort"])[0]
        assert plain.key != profiled.key


class TestCli:
    def test_run_json_deterministic_across_engines(self, capsys):
        outputs = []
        for engine in ("fast", "precise"):
            assert prof_main(["run", "sort", "--format", "json", "--engine", engine]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        profile = json.loads(outputs[0])
        assert profile["name"] == "sort" and profile["hot"]

    def test_run_collapsed_format(self, capsys):
        assert prof_main(["run", "sort", "--format", "collapsed", "--top", "4"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 4
        assert all(";" in line and line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_run_rejects_unknown_target(self, capsys):
        assert prof_main(["run", "no-such-workload"]) == 2

    def test_claims_pass_on_shipped_corpus(self, capsys):
        assert prof_main(["claims"]) == 0
        assert "all paper claims hold" in capsys.readouterr().out


class TestChaosDifferential:
    """fingerprint equality implies counter-group equality under chaos."""

    PLAN = [
        injection(40, "spurious-int"),
        injection(120, "refault"),
        injection(300, "spurious-int"),
    ]

    def _run_engine(self, fast):
        kernel = Kernel(quantum=200)
        kernel.add_process(assemble(_counting_source(100, 25)))
        kernel.boot()
        profiler = Profiler().attach(kernel.cpu)
        plan = make_plan(11, "perf-differential", self.PLAN)
        run = run_plan(kernel, plan, fast=fast)
        return kernel, profiler, run

    def test_fingerprint_equality_implies_counter_equality(self):
        (k_fast, p_fast, run_fast) = self._run_engine(True)
        (k_ref, p_ref, run_ref) = self._run_engine(False)
        # both engines survived the same injections the same way...
        assert run_fast.records == run_ref.records
        assert state_fingerprint(k_fast.cpu) == state_fingerprint(k_ref.cpu)
        # ...therefore the observability layer must agree byte-for-byte
        assert p_fast.counts == p_ref.counts
        assert p_fast.events == p_ref.events
        assert stable_groups(collect(k_fast.cpu)) == stable_groups(collect(k_ref.cpu))

    def test_injected_faults_reach_the_event_ring(self):
        _, profiler, _ = self._run_engine(True)
        kinds = {event["kind"] for event in profiler.events}
        assert "fault" in kinds


class TestSystemGroups:
    def test_machine_counter_groups_accessor(self):
        machine = Machine(assemble("start: mov #1, r1\n trap #0"))
        Profiler().attach(machine.cpu)
        machine.run(100)
        groups = machine.counter_groups()
        assert groups["pipeline"]["words"] == 2
        assert groups["mix"] == {"mov": 1, "trap": 1}
        # a bare machine has no mapping or DMA traffic
        assert all(v == 0 for v in groups["system"].values())

    def test_kernel_groups_report_pagemap_traffic(self):
        kernel = Kernel(quantum=200)
        kernel.add_process(assemble(_counting_source(100, 10)))
        kernel.boot()
        kernel.run(200_000)
        groups = kernel.counter_groups()
        assert groups["system"]["pagemap_translations"] > 0

    def test_dma_traffic_lands_in_system_group(self):
        from repro.system.dma import FreeCycleDma, run_with_dma

        source = """
start:  mov #0, r8
        movi #200, r9
loop:   add r8, #1, r8
        blo r8, r9, loop
        nop
        trap #0
"""
        machine = Machine(assemble(source))
        dma = FreeCycleDma(machine.cpu.memory)
        dma.enqueue(source=0, dest=2000, length=50)
        run_with_dma(machine, dma)
        groups = collect(machine.cpu, dma=dma)
        assert groups["system"]["dma_cycles_offered"] > 0
        assert groups["system"]["dma_words_moved"] == dma.words_moved > 0


class TestTracingFetchFault:
    def test_fetch_fault_is_marked_not_mislabeled(self):
        """A faulting fetch yields fetch_faulted=True, not a fake NOP.

        With a kernel handler installed the step itself *succeeds* (it
        vectors to the bus-error handler), which is exactly the case the
        old code mislabeled as an executed NOP at the faulting pc.
        """
        kernel = Kernel(quantum=200)
        kernel.add_process(assemble(_counting_source(100, 25)))
        kernel.boot()
        kernel.run_steps(50, fast=False)
        kernel.cpu.pc = 1 << 22           # way beyond physical memory
        records = list(trace(kernel.cpu, max_steps=2))
        assert records[0].fetch_faulted
        assert "<fetch fault>" in repr(records[0])
        # the very next traced word is the handler's, cleanly fetched
        assert not records[1].fetch_faulted

    def test_clean_steps_are_not_marked(self):
        machine = Machine(assemble("start: mov #1, r1\n trap #0"))
        records = list(trace(machine.cpu, max_steps=5))
        assert records and all(not r.fetch_faulted for r in records)
        assert "mov" in repr(records[0])
