"""The fuzz subsystem: generators, oracle, farm batches, shrinking.

Determinism is the load-bearing property -- the same (seed, index,
mode) triple must render byte-identical programs and oracle digests on
any host at any parallelism -- so most tests here compare two
independent derivations of the same thing.  The planted-divergence
tests drive the full detect -> minimize -> artifact -> replay pipeline
through a test-only oracle hook, proving a real divergence would be
caught, shrunk, and reproducible from its seed alone.
"""

import json
import os

import pytest

from repro.farm import Scheduler
from repro.farm.job import fuzz_jobs
from repro.fuzz import (
    MODE_AST,
    MODE_BOTH,
    MODE_WORDS,
    batch_ranges,
    check_case,
    make_case,
    minimize_case,
    run_batch,
)
from repro.fuzz import oracle
from repro.fuzz.artifacts import dump_artifact, load_artifact
from repro.fuzz.case import case_mode
from repro.shrink import shortest_failing_prefix_items, shortest_failing_prefix_length


@pytest.fixture(autouse=True)
def _no_hook():
    """Every test starts and ends with the divergence hook unset."""
    oracle.DIVERGENCE_HOOK = None
    yield
    oracle.DIVERGENCE_HOOK = None


# -- generators --------------------------------------------------------------


def test_case_generation_is_deterministic():
    for index in range(4):
        a = make_case(11, index, MODE_BOTH)
        b = make_case(11, index, MODE_BOTH)
        assert a.source == b.source
        assert a.name == b.name
        assert len(a.units) == len(b.units)


def test_distinct_seeds_generate_distinct_programs():
    sources = {make_case(seed, 0, MODE_AST).source for seed in range(6)}
    assert len(sources) == 6


def test_both_mode_interleaves_ast_and_words():
    assert case_mode(MODE_BOTH, 0) == MODE_AST
    assert case_mode(MODE_BOTH, 1) == MODE_WORDS
    assert case_mode(MODE_AST, 17) == MODE_AST
    with pytest.raises(ValueError):
        case_mode("bogus", 0)


def test_case_mode_is_independent_of_batch_split():
    """The concrete mode keys on the global index, never the batch."""
    modes_whole = [make_case(5, i, MODE_BOTH).mode for i in range(6)]
    modes_split = [make_case(5, i, MODE_BOTH).mode for i in range(3)] + [
        make_case(5, i, MODE_BOTH).mode for i in range(3, 6)
    ]
    assert modes_whole == modes_split


# -- the oracle --------------------------------------------------------------


def test_word_cases_pass_the_oracle():
    for index in (1, 3, 5, 7):
        result = check_case(make_case(23, index, MODE_BOTH))
        assert result.mode == "words"
        assert not result.failed, result.divergences


def test_ast_case_passes_the_oracle():
    # index 2 avoids the chaos-sampled slot, keeping this test quick
    result = check_case(make_case(23, 2, MODE_BOTH))
    assert result.mode == "ast"
    assert not result.failed, result.divergences
    assert set(oracle.OPT_LEVELS) <= set(result.observations)
    assert "cc" in result.observations


def test_oracle_digest_is_deterministic():
    case = make_case(23, 3, MODE_BOTH)
    assert check_case(case).digest == check_case(case).digest


def test_planted_divergence_is_caught():
    case = make_case(23, 1, MODE_BOTH)
    oracle.DIVERGENCE_HOOK = lambda source, engine: engine == "jit"
    result = check_case(case)
    assert result.failed
    checks = {d["check"] for d in result.divergences}
    assert "engine" in checks


# -- batches and farm jobs ---------------------------------------------------


def test_batch_ranges_cover_every_case_exactly_once():
    ranges = batch_ranges(17, 5)
    assert [r["count"] for r in ranges] == [5, 5, 5, 2]
    covered = [r["start"] + i for r in ranges for i in range(r["count"])]
    assert covered == list(range(17))


def test_run_batch_is_deterministic():
    a = run_batch(23, 1, 4, MODE_WORDS)
    b = run_batch(23, 1, 4, MODE_WORDS)
    assert a == b
    assert a["digest"] == b["digest"]
    assert len(a["cases"]) == 4
    assert a["divergences"] == []


def test_fuzz_job_keys_are_stable_and_parallelism_free():
    jobs = fuzz_jobs(23, 10, mode=MODE_WORDS, batch=4)
    again = fuzz_jobs(23, 10, mode=MODE_WORDS, batch=4)
    assert [j.key for j in jobs] == [j.key for j in again]
    assert sum(j.spec["count"] for j in jobs) == 10
    # retuning the wall budget must not re-key the batch
    relaxed = fuzz_jobs(23, 10, mode=MODE_WORDS, batch=4)[0]
    assert relaxed.key == jobs[0].key


def test_farm_records_are_identical_across_jobs_1_and_2():
    jobs = list(fuzz_jobs(23, 8, mode=MODE_WORDS, batch=2))
    serial = Scheduler(jobs=1).run(jobs)
    parallel = Scheduler(jobs=2).run(jobs)
    stable = lambda recs: [  # noqa: E731
        {k: v for k, v in r.items() if k in ("key", "name", "fingerprint", "extra")}
        for r in recs
    ]
    assert stable(serial) == stable(parallel)
    for record in serial:
        assert record["status"] == "ok"
        assert record["extra"]["fuzz"]["divergences"] == []


def test_divergent_batch_fails_the_farm_record():
    oracle.DIVERGENCE_HOOK = lambda source, engine: engine == "jit"
    job = fuzz_jobs(23, 2, mode=MODE_WORDS, batch=2, start=1)[0]
    record = Scheduler(jobs=1).run([job])[0]
    assert record["status"] == "error"
    assert record["error"]["type"] == "FuzzDivergence"
    assert record["retryable"] is False
    assert "mips-fuzz run" in record["error"]["message"]


# -- the shrinker ------------------------------------------------------------


def test_shortest_failing_prefix_length():
    assert shortest_failing_prefix_length(10, lambda n: n >= 4) == 4
    # the search space is 1..count: an always-failing predicate pins to 1
    assert shortest_failing_prefix_length(10, lambda n: True) == 1
    assert shortest_failing_prefix_length(1, lambda n: n >= 1) == 1
    # a never-failing predicate returns count unchanged (no false shrink)
    assert shortest_failing_prefix_length(6, lambda n: False) == 6


def test_shortest_failing_prefix_items():
    items = list("abcdefgh")
    kept = shortest_failing_prefix_items(items, lambda p: "e" in p)
    assert kept == list("abcde")


def test_planted_divergence_shrinks_to_minimal_prefix(tmp_path):
    """The acceptance fixture: a planted divergence is caught, shrunk to
    the smallest unit prefix that still triggers it, dumped as an
    artifact, and replayable from the seed triple alone."""
    case = make_case(23, 1, MODE_BOTH)
    assert case.mode == MODE_WORDS and len(case.units) >= 3
    # pick a line that only a late unit contributes, so the minimal
    # failing prefix is a strict, known subset of the case
    target = len(case.units) - 1
    marker = None
    earlier = "\n".join(case.render(case.units[:target]).splitlines())
    for line in case.units[target].lines:
        if line not in earlier:
            marker = line
            break
    assert marker is not None
    oracle.DIVERGENCE_HOOK = (
        lambda source, engine: engine == "jit" and marker in source
    )

    minimized = minimize_case(case)
    assert minimized is not None
    assert minimized["units"] == target + 1
    assert minimized["units_full"] == len(case.units)
    assert marker in minimized["source"]
    assert minimized["divergences"]

    path = dump_artifact(
        str(tmp_path), case, minimized["divergences"], minimized
    )
    record = load_artifact(path)
    assert record["seed"] == 23 and record["index"] == 1
    assert record["minimized"] == {
        "units": target + 1,
        "units_full": len(case.units),
    }
    source_path = os.path.join(str(tmp_path), record["source_file"])
    assert open(source_path).read() == minimized["source"]
    assert record["replay"].startswith("mips-fuzz run --seed 23 --start 1")

    # the replay path regenerates from (seed, index, mode) and re-fails
    replayed = make_case(record["seed"], record["index"], record["mode"])
    assert replayed.source == case.source
    assert check_case(replayed).failed
    # ... and passes again once the planted bug is "fixed"
    oracle.DIVERGENCE_HOOK = None
    assert not check_case(replayed).failed


def test_minimize_returns_none_for_passing_case():
    assert minimize_case(make_case(23, 3, MODE_BOTH)) is None


# -- the CLI -----------------------------------------------------------------


def test_cli_stable_results_byte_identical_across_jobs(tmp_path):
    from repro.cli import fuzz_main

    paths = []
    for jobs in (1, 2):
        path = tmp_path / f"stable-{jobs}.jsonl"
        rc = fuzz_main(
            [
                "run", "--cases", "8", "--seed", "23", "--fuzz-mode", "words",
                "--batch", "2", "--jobs", str(jobs),
                "--stable-results", str(path),
            ]
        )
        assert rc == 0
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_cli_divergence_dumps_artifact_and_replay_round_trips(
    tmp_path, capsys
):
    from repro.cli import fuzz_main

    oracle.DIVERGENCE_HOOK = lambda source, engine: engine == "jit"
    artifacts = tmp_path / "artifacts"
    rc = fuzz_main(
        [
            "run", "--cases", "1", "--seed", "23", "--start", "1",
            "--fuzz-mode", "words", "--jobs", "1",
            "--artifacts", str(artifacts),
        ]
    )
    assert rc == 1
    dumped = sorted(artifacts.iterdir())
    names = [p.name for p in dumped]
    assert "fuzz-words-s23-c1.json" in names
    assert "fuzz-words-s23-c1.s" in names
    json_path = artifacts / "fuzz-words-s23-c1.json"
    record = json.loads(json_path.read_text())
    assert record["divergences"]

    capsys.readouterr()
    assert fuzz_main(["replay", str(json_path)]) == 1
    assert "status=divergence" in capsys.readouterr().out

    oracle.DIVERGENCE_HOOK = None
    assert fuzz_main(["replay", str(json_path)]) == 0
