"""The distributed farm: sharding, stealing, reclamation, degradation.

The contract under test is the one CI's dist-smoke job enforces from
the outside: ``mips-farm run --hosts N`` produces the byte-identical
order-independent aggregate digest for any N -- including runs where a
shard host is SIGKILLed mid-batch (its jobs are reclaimed and re-run,
none lost, none duplicated) and runs where *every* host is gone (serial
in-process degradation).  Around that sit the protocol-level pieces:
the version/digest handshake rejects mismatched hosts with a structured
error instead of a hang, and the heartbeat monitor's dead-host policy
is exercised against a fake clock.
"""

import json
import socket
import threading
import time

import pytest

from repro.farm import Job, Scheduler, aggregate, workload_jobs
from repro.farm.dist import (
    DistScheduler,
    HeartbeatMonitor,
    JsonlConnection,
    LocalShardPool,
    ShardHost,
    hello_banner,
    parse_host_spec,
    validate_banner,
)
from repro.farm.dist.protocol import DIGEST_ALGORITHM, PROTO_VERSION
from repro.farm.store import stable_view

#: cheap corpus members (tens of thousands of cycles, not millions)
FAST_WORKLOADS = ("scanner", "logic")


def spin_job(name: str, iters: int) -> Job:
    """An inline job whose simulation cost is tunable by loop count."""
    source = (
        f"program {name}; var i, s: integer; "
        f"begin s := 0; for i := 1 to {iters} do s := s + i; writeln(s) end."
    )
    return Job(kind="source", name=name, spec={"source": source})


def fast_dist(hosts, **kwargs):
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return DistScheduler(hosts=hosts, **kwargs)


def serial_digest(jobs):
    return aggregate(Scheduler(jobs=1).run(jobs))["digest"]


# -- protocol ---------------------------------------------------------------


class TestHostSpec:
    def test_host_and_port(self):
        assert parse_host_spec("10.0.0.7:9000") == ("10.0.0.7", 9000)

    def test_bare_port_means_localhost(self):
        assert parse_host_spec(":9000") == ("127.0.0.1", 9000)

    @pytest.mark.parametrize("bad", ["nohost", "host:", "host:abc", ""])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_host_spec(bad)


class TestBannerValidation:
    def test_own_banner_is_accepted(self):
        assert validate_banner(hello_banner(4, "h1")) is None

    def test_proto_mismatch_names_both_versions(self):
        banner = dict(hello_banner(1, "h1"), proto=PROTO_VERSION + 1)
        reason = validate_banner(banner)
        assert "protocol version" in reason
        assert str(PROTO_VERSION) in reason

    def test_repo_version_mismatch_is_rejected(self):
        banner = dict(hello_banner(1, "h1"), repo="0.0.0-elsewhere")
        assert "repo version" in validate_banner(banner)

    def test_digest_algorithm_mismatch_is_rejected(self):
        banner = dict(hello_banner(1, "h1"), digest="md5/i-made-this-up")
        reason = validate_banner(banner)
        assert "digest algorithm" in reason
        assert DIGEST_ALGORITHM in reason

    def test_non_hello_is_rejected(self):
        assert validate_banner({"type": "dispatch"}) is not None


class TestJsonlConnection:
    def test_receive_keeps_extra_lines_for_the_session(self):
        a, b = socket.socketpair()
        try:
            conn = JsonlConnection(a)
            b.sendall(b'{"type": "hello"}\n{"type": "dispatch", "seq": 1}\n')
            first = conn.receive(1.0)
            assert first["type"] == "hello"
            # the second complete line must not be lost to the handshake
            b.sendall(b"\n")
            rest = conn.drain()
            assert [m["type"] for m in rest] == ["dispatch"]
        finally:
            a.close()
            b.close()


# -- heartbeat policy (fake clock) ------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestHeartbeatMonitor:
    def test_ping_becomes_due_after_the_interval(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(interval_s=1.0, timeout_s=10.0, clock=clock)
        monitor.register("h1")
        assert monitor.due() == []
        clock.advance(1.5)
        assert monitor.due() == ["h1"]
        monitor.pinged("h1")
        assert monitor.due() == []

    def test_silent_host_expires_after_the_timeout(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(interval_s=1.0, timeout_s=5.0, clock=clock)
        monitor.register("h1")
        clock.advance(4.9)
        assert monitor.expired() == []
        clock.advance(0.2)
        assert monitor.expired() == ["h1"]
        assert monitor.silent_for("h1") == pytest.approx(5.1)

    def test_any_traffic_resets_the_expiry(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(interval_s=1.0, timeout_s=5.0, clock=clock)
        monitor.register("h1")
        clock.advance(4.0)
        monitor.heard("h1")
        clock.advance(4.0)
        assert monitor.expired() == []
        clock.advance(1.5)
        assert monitor.expired() == ["h1"]

    def test_forgotten_hosts_stop_being_tracked(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(interval_s=1.0, timeout_s=5.0, clock=clock)
        monitor.register("h1")
        monitor.forget("h1")
        clock.advance(100.0)
        assert monitor.due() == []
        assert monitor.expired() == []


# -- handshake rejection (the no-hang fix) -----------------------------------


def _fake_host(banner_overrides):
    """A listening socket that sends one (possibly wrong) banner."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    replies = []

    def serve():
        sock, _addr = listener.accept()
        banner = dict(hello_banner(1, "imposter"), **banner_overrides)
        sock.sendall(json.dumps(banner).encode() + b"\n")
        sock.settimeout(2.0)
        try:
            replies.append(sock.recv(65536))
        except (OSError, socket.timeout):
            replies.append(b"")
        sock.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return listener, port, replies, thread


class TestHandshakeRejection:
    def test_mismatched_banner_is_refused_with_a_structured_error(self, capsys):
        listener, port, replies, thread = _fake_host({"proto": PROTO_VERSION + 7})
        try:
            scheduler = fast_dist([f"127.0.0.1:{port}"])
            link = scheduler._connect_one(f"127.0.0.1:{port}")
            assert link is None
            thread.join(5.0)
            # the host was told why, machine-readably, instead of left hanging
            refusal = json.loads(replies[0])
            assert refusal["type"] == "error"
            assert "protocol version" in refusal["reason"]
            warning = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
            assert warning["warning"] == "shard-host-rejected"
            assert "protocol version" in warning["reason"]
        finally:
            listener.close()

    def test_unreachable_host_is_skipped_not_fatal(self, capsys):
        # a port nothing listens on: connection refused, warned, skipped
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        scheduler = fast_dist([f"127.0.0.1:{dead_port}"])
        assert scheduler._connect_one(f"127.0.0.1:{dead_port}") is None
        warning = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert warning["warning"] == "shard-host-unreachable"

    def test_rejected_host_returns_to_listening(self):
        """An error ack must not wedge the host: next session still served."""
        host = ShardHost(workers=1)
        thread = threading.Thread(target=host.serve_forever, daemon=True)
        thread.start()
        spec = f"127.0.0.1:{host.port}"
        try:
            # session 1: a coordinator that rejects the banner
            sock = socket.create_connection(parse_host_spec(spec), timeout=5.0)
            conn = JsonlConnection(sock)
            assert conn.receive(5.0)["type"] == "hello"
            conn.send({"type": "error", "reason": "testing rejection"})
            conn.close()
            # session 2: a real run against the same host succeeds
            jobs = list(workload_jobs(list(FAST_WORKLOADS)))
            report = fast_dist([spec]).run_report(jobs)
            assert [r["status"] for r in report.records] == ["ok", "ok"]
        finally:
            host.close()


# -- end-to-end distributed runs ---------------------------------------------


class TestDistributedDigest:
    def test_two_hosts_match_serial_and_tag_hosts(self):
        jobs = list(workload_jobs(list(FAST_WORKLOADS) + ["wordcount"]))
        want = serial_digest(jobs)
        with LocalShardPool(2, workers_per_host=1) as pool:
            report = fast_dist(pool.specs).run_report(jobs)
        summary = aggregate(report.records)
        assert summary["digest"] == want
        assert summary["duplicates"] == []
        # every record names the shard host it ran on...
        assert all(r["host"] in report.hosts for r in report.records)
        # ...and the volatile tag never reaches the stable view
        assert all("host" not in stable_view(r) for r in report.records)
        assert sum(summary["by_host"].values()) == len(jobs)
        assert sum(acct["jobs"] for acct in report.hosts.values()) == len(jobs)

    def test_empty_host_list_degrades_to_serial(self):
        jobs = list(workload_jobs(list(FAST_WORKLOADS)))
        want = serial_digest(jobs)
        report = fast_dist([]).run_report(jobs)
        assert report.degraded_serial
        assert aggregate(report.records)["digest"] == want
        assert all(r["host"] == "local" for r in report.records)

    def test_all_hosts_unreachable_degrades_to_serial(self, capsys):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        jobs = list(workload_jobs(list(FAST_WORKLOADS)))
        want = serial_digest(jobs)
        report = fast_dist([f"127.0.0.1:{dead_port}"]).run_report(jobs)
        assert report.degraded_serial
        assert aggregate(report.records)["digest"] == want
        err = capsys.readouterr().err
        assert "shard-host-unreachable" in err
        assert "all-shard-hosts-lost" in err


class TestWorkStealing:
    def _skewed_jobs(self):
        """Round-robin lands every heavy job on host 0, light on host 1.

        The skew is deliberately extreme (seconds vs milliseconds): host
        1 must reliably drain its shard and go idle while host 0 is
        still inside its first heavy job, whatever else the CI box is
        doing, so the queued heavy job is there to steal.
        """
        jobs = []
        for i in range(4):
            if i % 2 == 0:
                jobs.append(spin_job(f"heavy{i}", 600_000 + i))
            else:
                jobs.append(spin_job(f"light{i}", 200 + i))
        return jobs

    def test_idle_host_steals_from_the_loaded_one(self):
        jobs = self._skewed_jobs()
        want = serial_digest(jobs)
        with LocalShardPool(2, workers_per_host=1) as pool:
            report = fast_dist(pool.specs).run_report(jobs)
        assert aggregate(report.records)["digest"] == want
        # host 1 drained its light shard and stole from host 0's backlog
        assert report.stolen >= 1
        assert sum(acct["stolen"] for acct in report.hosts.values()) == report.stolen

    def test_no_steal_disables_migration_but_not_correctness(self):
        jobs = self._skewed_jobs()
        want = serial_digest(jobs)
        with LocalShardPool(2, workers_per_host=1) as pool:
            report = fast_dist(pool.specs, steal=False).run_report(jobs)
        assert report.stolen == 0
        assert aggregate(report.records)["digest"] == want


class TestDeadHostReclamation:
    def test_killed_host_jobs_are_reclaimed_and_digest_survives(self, capsys):
        # index 0 (host 0) spins long enough to still be running when the
        # first light result (host 1) triggers the kill
        jobs = [spin_job("victim0", 600_000)] + [
            spin_job(f"light{i}", 1_000 + i) for i in range(1, 6)
        ]
        want = serial_digest(jobs)
        with LocalShardPool(2, workers_per_host=1) as pool:
            killed = []

            def killer(done):
                if done >= 1 and not killed:
                    killed.append(True)
                    pool.kill(0)

            report = fast_dist(
                pool.specs,
                heartbeat_s=0.2,
                heartbeat_timeout_s=2.0,
                on_progress=killer,
            ).run_report(jobs)
        assert killed, "the kill hook never fired"
        summary = aggregate(report.records)
        assert summary["digest"] == want
        assert summary["duplicates"] == []
        assert [r["status"] for r in report.records] == ["ok"] * len(jobs)
        # the dead host's in-flight work was reclaimed, not lost
        assert report.reclaimed >= 1
        assert report.retries >= 1
        dead = [h for h, acct in report.hosts.items() if not acct["alive"]]
        assert len(dead) == 1
        assert report.hosts[dead[0]]["reclaimed"] == report.reclaimed
        assert "shard-host-lost" in capsys.readouterr().err

    def test_losing_every_host_midway_finishes_serially(self):
        jobs = [spin_job("tail0", 400_000)] + [
            spin_job(f"tail{i}", 1_000 + i) for i in range(1, 4)
        ]
        want = serial_digest(jobs)
        with LocalShardPool(1, workers_per_host=1) as pool:
            killed = []

            def killer(done):
                if done >= 1 and not killed:
                    killed.append(True)
                    pool.kill(0)

            report = fast_dist(
                pool.specs,
                heartbeat_s=0.2,
                heartbeat_timeout_s=2.0,
                on_progress=killer,
            ).run_report(jobs)
        assert report.degraded_serial
        assert report.reclaimed >= 1
        assert aggregate(report.records)["digest"] == want
        # the serial tail tags its records with the local pseudo-host
        assert any(r["host"] == "local" for r in report.records)


# -- the gateway front ------------------------------------------------------


class TestGatewayDistFront:
    def test_shard_hosts_select_the_distributed_scheduler(self, tmp_path):
        from repro.service.cache import ResultCache
        from repro.service.gateway import Gateway

        gateway = Gateway(
            cache=ResultCache(str(tmp_path)), shard_hosts=["127.0.0.1:9999"]
        )
        assert isinstance(gateway._default_scheduler(), DistScheduler)

    def test_stats_absorb_per_host_accounting(self, tmp_path):
        from repro.farm.scheduler import FarmReport
        from repro.service.cache import ResultCache
        from repro.service.gateway import Gateway

        gateway = Gateway(cache=ResultCache(str(tmp_path)))
        report = FarmReport(
            records=[],
            stolen=2,
            reclaimed=1,
            retries=3,
            hosts={
                "h1": {"workers": 2, "alive": True, "jobs": 5, "stolen": 0,
                       "reclaimed": 0, "retries": 0},
                "h2": {"workers": 2, "alive": False, "jobs": 1, "stolen": 2,
                       "reclaimed": 1, "retries": 3},
            },
        )
        gateway._absorb_report(report)
        gateway._absorb_report(report)
        farm = gateway._stats_payload()["farm"]
        assert farm["stolen"] == 4
        assert farm["reclaimed"] == 2
        assert farm["hosts"]["h1"]["jobs"] == 10
        assert farm["hosts"]["h2"]["alive"] is False

    def test_gateway_batch_runs_on_shard_hosts(self, tmp_path):
        import asyncio

        from repro.service.cache import ResultCache
        from repro.service.gateway import Gateway

        jobs = list(workload_jobs(list(FAST_WORKLOADS)))
        want = serial_digest(jobs)

        async def drive(gateway):
            loop = asyncio.get_running_loop()
            owned = [(job, loop.create_future()) for job in jobs]
            await gateway._run_batch("t1", list(owned))
            return [future.result() for _job, future in owned]

        with LocalShardPool(1, workers_per_host=1) as pool:
            gateway = Gateway(
                cache=ResultCache(str(tmp_path)), shard_hosts=pool.specs
            )
            views = asyncio.run(drive(gateway))
        assert aggregate(views)["digest"] == want
        farm = gateway._stats_payload()["farm"]
        assert sum(acct["jobs"] for acct in farm["hosts"].values()) == len(jobs)


# -- the CLI surface --------------------------------------------------------


class TestDistCli:
    def test_hosts_flag_matches_in_process_run_byte_for_byte(self, tmp_path):
        from repro.cli import farm_main

        local = tmp_path / "local.jsonl"
        dist = tmp_path / "dist.jsonl"
        base = ["run", "--workload", "scanner", "--workload", "logic"]
        assert farm_main(base + ["--jobs", "1", "--stable-results", str(local)]) == 0
        assert (
            farm_main(
                base
                + [
                    "--hosts", "2", "--host-workers", "1",
                    "--stable-results", str(dist),
                ]
            )
            == 0
        )
        assert local.read_bytes() == dist.read_bytes()

    def test_kill_host_after_requires_hosts(self, capsys):
        from repro.cli import farm_main

        with pytest.raises(SystemExit):
            farm_main(["run", "--workload", "scanner", "--kill-host-after", "1"])

    def test_host_subcommand_announces_and_serves(self):
        import subprocess
        import sys

        process = subprocess.Popen(
            [sys.executable, "-m", "repro.farm.dist.host", "--port", "0",
             "--workers", "1"],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            announce = process.stdout.readline()
            assert "listening on" in announce
            port = announce.split(":")[2].split()[0]
            jobs = list(workload_jobs(["scanner"]))
            report = fast_dist([f"127.0.0.1:{port}"]).run_report(jobs)
            assert report.records[0]["status"] == "ok"
        finally:
            process.kill()
            process.wait(5.0)
            process.stdout.close()
