"""Shared fixtures: compiled programs are expensive, so cache them."""

from __future__ import annotations

import pytest

from repro.compiler import CompileOptions, compile_source
from repro.sim import HazardMode, Machine


@pytest.fixture(scope="session")
def compile_cache():
    """Session-wide (source, options-key) -> CompiledProgram cache."""
    cache = {}

    def compile_cached(source, options=None, opt_level=None):
        from repro.reorg import OptLevel

        level = opt_level or OptLevel.BRANCH_DELAY
        key = (source, repr(options), level)
        if key not in cache:
            cache[key] = compile_source(source, options, level)
        return cache[key]

    return compile_cached


def run_program(compiled, inputs=None, hazard_mode=HazardMode.CHECKED, max_steps=30_000_000):
    """Run a compiled program under the checking simulator."""
    machine = Machine(compiled.program, hazard_mode=hazard_mode, inputs=inputs)
    machine.run(max_steps)
    return machine


@pytest.fixture
def run():
    return run_program
