"""The MiniJava front end: layout, lowering corners, differential identity.

The heavy full-matrix check (every corpus program x every opt level x
every engine, byte-compared) lives in CI's ``minijava-differential``
job; tier-1 keeps the targeted corners: vtable slot assignment under
inheritance and override, field-offset stability, ``this`` threading
through nested dynamic calls, heap exhaustion as a structured fault,
and the corpus oracles on one full (level x engine) sweep of the
smallest program.
"""

import json

import pytest

from repro.cli import EXIT_USAGE, compile_main, sim_main
from repro.mjlang import MiniJavaError, analyze_minijava, check, compile_minijava, parse
from repro.reorg import ALL_LEVELS
from repro.sim import Machine, MachineFault
from repro.sim.faults import TrapInstruction
from repro.workloads import MINIJAVA_CORPUS, MINIJAVA_EXPECTED

ENGINES = {"precise": (False, False), "fast": (True, False), "jit": (True, True)}


def run_minijava(source, opt_level=None, fast=True, jit=False, max_steps=5_000_000):
    machine = Machine(compile_minijava(source, opt_level=opt_level).program)
    machine.run(max_steps, fast=fast, jit=jit)
    return machine


HIERARCHY = """
class Main {
    public static void main(String[] a) {
        System.out.println(0);
    }
}

class Base {
    int f0;
    int f1;
    public int get(int k) { return f0; }
    public int sum(int k) { return f0 + f1; }
}

class Mid extends Base {
    int f2;
    public int sum(int k) { return f0 + f1 + f2; }
    public int extra(int k) { return f2; }
}

class Leaf extends Mid {
    int f3;
    public int get(int k) { return f3; }
}
"""


class TestClassLayout:
    def test_vtable_slots_under_inheritance_and_override(self):
        classes = check(parse(HIERARCHY)).classes
        base, mid, leaf = classes["Base"], classes["Mid"], classes["Leaf"]
        # slot order is declaration order, inherited-first, and an
        # override reuses its parent's slot -- the invariant indirect
        # dispatch relies on
        assert [(m.name, m.owner) for m in base.vtable] == [
            ("get", "Base"), ("sum", "Base"),
        ]
        assert [(m.name, m.owner) for m in mid.vtable] == [
            ("get", "Base"), ("sum", "Mid"), ("extra", "Mid"),
        ]
        assert [(m.name, m.owner) for m in leaf.vtable] == [
            ("get", "Leaf"), ("sum", "Mid"), ("extra", "Mid"),
        ]
        for info in (base, mid, leaf):
            assert [m.slot for m in info.vtable] == list(range(len(info.vtable)))

    def test_field_offsets_stable_across_subclassing(self):
        classes = check(parse(HIERARCHY)).classes
        # word 0 is the vtable pointer; inherited fields keep their
        # offsets so a Base-typed access works on any subclass instance
        assert classes["Base"].field_offsets == {"f0": 1, "f1": 2}
        assert classes["Mid"].field_offsets == {"f0": 1, "f1": 2, "f2": 3}
        assert classes["Leaf"].field_offsets == {"f0": 1, "f1": 2, "f2": 3, "f3": 4}
        assert classes["Base"].instance_words == 3
        assert classes["Leaf"].instance_words == 5

    def test_override_signature_mismatch_rejected(self):
        bad = HIERARCHY.replace(
            "public int extra(int k) { return f2; }",
            "public int get(int k, int j) { return f2; }",
        )
        with pytest.raises(MiniJavaError):
            check(parse(bad))

    def test_redeclaring_inherited_field_rejected(self):
        bad = HIERARCHY.replace("int f2;", "int f0;")
        with pytest.raises(MiniJavaError):
            check(parse(bad))


THIS_THREADING = """
class Main {
    public static void main(String[] a) {
        Counter c;
        c = new Counter();
        System.out.println(c.seed(5).addTwice(3));
        System.out.println(c.value(0));
    }
}

class Counter {
    int total;
    public Counter seed(int v) {
        total = v;
        return this;
    }
    public int add(int v) {
        total = total + v;
        return total;
    }
    public int addTwice(int v) {
        int first;
        first = this.add(v);
        return first + this.add(this.value(0));
    }
    public int value(int k) {
        return total;
    }
}
"""


class TestLoweringCorners:
    def test_this_threads_through_nested_dynamic_calls(self):
        # seed(5) -> add(3) = 8, add(value()=8) -> 16; addTwice = 8 + 16
        machine = run_minijava(THIS_THREADING)
        assert machine.output == [24, 16]

    def test_method_named_length_coexists_with_array_length(self):
        source = """
class Main {
    public static void main(String[] a) {
        Box b;
        int[] xs;
        xs = new int[7];
        b = new Box();
        System.out.println(b.length(xs.length));
    }
}
class Box {
    public int length(int n) { return n * 10; }
}
"""
        assert run_minijava(source).output == [70]

    def test_argument_side_effects_evaluate_left_to_right(self):
        source = """
class Main {
    public static void main(String[] a) {
        Acc x;
        x = new Acc();
        System.out.println(x.pair(x.bump(1), x.bump(10)));
        System.out.println(x.get(0));
    }
}
class Acc {
    int n;
    public int bump(int v) { n = n + v; return n; }
    public int pair(int p, int q) { return p * 100 + q; }
    public int get(int k) { return n; }
}
"""
        # left-to-right: bump(1) -> 1, bump(10) -> 11, pair = 111
        assert run_minijava(source).output == [111, 11]


HEAP_HOG = """
class Main {
    public static void main(String[] a) {
        int i;
        int[] chunk;
        i = 0;
        while (i < 16) {
            chunk = new int[65536];
            i = i + 1;
        }
        System.out.println(i);
    }
}
"""


class TestHeapExhaustion:
    def test_exhaustion_is_a_structured_trap_not_a_crash(self):
        # 16 x 65537-word allocations overrun the 2^19-word arena; the
        # runtime must raise trap #6 as a catchable machine fault
        with pytest.raises(MachineFault) as excinfo:
            run_minijava(HEAP_HOG)
        assert isinstance(excinfo.value, TrapInstruction)
        assert excinfo.value.code == 6

    def test_exhaustion_identical_on_every_engine(self):
        codes = set()
        for fast, jit in ENGINES.values():
            with pytest.raises(TrapInstruction) as excinfo:
                run_minijava(HEAP_HOG, fast=fast, jit=jit)
            codes.add(excinfo.value.code)
        assert codes == {6}


class TestCorpusDifferential:
    @pytest.mark.parametrize("name", sorted(MINIJAVA_CORPUS))
    def test_corpus_matches_python_oracle(self, name):
        machine = run_minijava(MINIJAVA_CORPUS[name])
        assert machine.output == MINIJAVA_EXPECTED[name]

    def test_smallest_program_identical_across_levels_and_engines(self):
        source = MINIJAVA_CORPUS["mj_list"]
        outputs = set()
        for level in ALL_LEVELS:
            compiled = compile_minijava(source, opt_level=level)
            # engines must agree on everything, counters included, at
            # each level; levels only owe each other identical output
            per_engine = set()
            for fast, jit in ENGINES.values():
                machine = Machine(compiled.program)
                stats = machine.run(fast=fast, jit=jit)
                per_engine.add((tuple(machine.output), machine.output_text,
                                stats.cycles, stats.words))
            assert len(per_engine) == 1, (level, per_engine)
            outputs.add(next(iter(per_engine))[:2])
        assert len(outputs) == 1, outputs
        assert list(next(iter(outputs))[0]) == MINIJAVA_EXPECTED["mj_list"]


class TestFrontEndErrors:
    def test_parse_error_is_structured(self):
        with pytest.raises(MiniJavaError):
            parse("class Main { public static void main(String[] a) { ")

    def test_println_requires_int(self):
        source = """
class Main {
    public static void main(String[] a) {
        System.out.println(1 < 2);
    }
}
"""
        with pytest.raises(MiniJavaError):
            analyze_minijava(source)

    def test_unknown_class_rejected(self):
        source = """
class Main {
    public static void main(String[] a) {
        Ghost g;
        g = new Ghost();
        System.out.println(0);
    }
}
"""
        with pytest.raises(MiniJavaError):
            analyze_minijava(source)


class TestLangFlag:
    def _assert_usage_error(self, exit_code, err, supported):
        assert exit_code == EXIT_USAGE
        assert "unknown --lang" in err
        record = json.loads(err.strip().splitlines()[-1])
        assert record["error"] == "unknown-lang"
        assert record["lang"] == "cobol"
        assert record["supported"] == supported

    def test_mipsc_rejects_unknown_lang(self, tmp_path, capsys):
        path = tmp_path / "p.java"
        path.write_text("class M {}")
        code = compile_main([str(path), "--lang", "cobol"])
        self._assert_usage_error(code, capsys.readouterr().err, ["minijava", "pascal"])

    def test_sim_rejects_unknown_lang(self, tmp_path, capsys):
        path = tmp_path / "p.s"
        path.write_text("start: trap #0\n")
        code = sim_main([str(path), "--lang", "cobol"])
        self._assert_usage_error(
            code, capsys.readouterr().err, ["asm", "minijava", "pascal"]
        )

    def test_mipsc_compiles_minijava_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "Main.java"
        path.write_text(THIS_THREADING)
        assert compile_main([str(path), "--lang", "minijava"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[:2] == ["24", "16"]
