"""Binary encoding: every word is 32 bits and round-trips exactly."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.operations import AluOp, Comparison
from repro.isa.pieces import (
    Absolute,
    Alu,
    BaseIndex,
    BaseShifted,
    CompareBranch,
    Displacement,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    MovImm,
    Noop,
    ReadSpecial,
    Rfs,
    SetCond,
    Store,
    Trap,
    WriteSpecial,
)
from repro.isa.registers import Reg, SpecialReg
from repro.isa.words import InstructionWord

regs = st.builds(Reg, st.integers(0, 15))
imms = st.builds(Imm, st.integers(0, 15))
operands = st.one_of(regs, imms)
#: MOV/NOT canonically carry Imm(0) as their ignored second source
two_source_ops = st.sampled_from([op for op in AluOp if op not in (AluOp.MOV, AluOp.NOT, AluOp.IC)])

addresses = st.one_of(
    st.builds(Absolute, st.integers(0, (1 << 21) - 1)),
    st.builds(Displacement, regs, st.integers(-(1 << 16), (1 << 16) - 1)),
    st.builds(BaseIndex, regs, regs),
    st.builds(BaseShifted, regs, st.integers(1, 4)),
)

single_pieces = st.one_of(
    st.just(Noop()),
    st.just(Rfs()),
    st.builds(Alu, two_source_ops, operands, operands, regs),
    st.builds(lambda s1, dst: Alu(AluOp.MOV, s1, Imm(0), dst), operands, regs),
    st.builds(lambda s1, dst: Alu(AluOp.NOT, s1, Imm(0), dst), operands, regs),
    st.builds(MovImm, st.integers(0, 255), regs),
    st.builds(LoadImm, st.integers(-(1 << 20), (1 << 20) - 1), regs),
    st.builds(SetCond, st.sampled_from(list(Comparison)), operands, operands, regs),
    st.builds(Load, addresses, regs),
    st.builds(Store, addresses, regs),
    st.builds(Jump, st.integers(0, (1 << 24) - 1), st.booleans()),
    st.builds(JumpIndirect, regs, st.booleans()),
    st.builds(Trap, st.integers(0, 4095)),
    st.builds(ReadSpecial, st.sampled_from(list(SpecialReg)), regs),
    st.builds(WriteSpecial, st.sampled_from(list(SpecialReg)), operands),
)


class TestRoundTrip:
    @given(single_pieces)
    def test_single_piece_round_trips(self, piece):
        word = InstructionWord.single(piece)
        bits = encode(word, addr=0)
        assert 0 <= bits < (1 << 32), "every instruction is exactly 32 bits"
        assert decode(bits, addr=0) == word

    @given(
        st.integers(0, 1000),
        st.integers(0, 2000),
        st.sampled_from(list(Comparison)),
        operands,
        operands,
    )
    def test_branch_round_trips_pc_relative(self, addr, target, cond, s1, s2):
        word = InstructionWord.single(CompareBranch(cond, s1, s2, target))
        assert decode(encode(word, addr), addr) == word

    def test_branch_offset_overflow(self):
        word = InstructionWord.single(
            CompareBranch(Comparison.EQ, Reg(0), Reg(0), 1 << 15)
        )
        with pytest.raises(EncodingError):
            encode(word, addr=0)

    def test_unresolved_target_rejected(self):
        word = InstructionWord.single(Jump("label"))
        with pytest.raises(EncodingError):
            encode(word)


packed_mem = st.builds(
    lambda store, base, disp, r: (
        Store(Displacement(base, disp), r) if store else Load(Displacement(base, disp), r)
    ),
    st.booleans(),
    regs,
    st.integers(0, 7),
    regs,
)

packable_ops = st.sampled_from(
    [AluOp.ADD, AluOp.SUB, AluOp.RSUB, AluOp.AND, AluOp.OR, AluOp.XOR]
)
packed_alu = st.one_of(
    st.builds(lambda op, s1, s2, dst: Alu(op, s1, s2, dst), packable_ops, operands, regs, regs),
    st.builds(lambda s1, dst: Alu(AluOp.MOV, s1, Imm(0), dst), operands, regs),
    st.builds(
        lambda op, s1, s2, dst: Alu(op, s1, s2, dst),
        st.sampled_from([AluOp.SLL, AluOp.SRL, AluOp.SRA]),
        regs,
        operands,
        regs,
    ),
    st.builds(MovImm, st.integers(0, 255), regs),
)


class TestPackedRoundTrip:
    @given(packed_mem, packed_alu)
    def test_packed_round_trips(self, mem, alu):
        from repro.isa.words import can_pack

        if not can_pack(mem, alu):
            return
        word = InstructionWord.packed(mem, alu)
        assert decode(encode(word)) == word

    def test_exact_example(self):
        word = InstructionWord.packed(
            Load(Displacement(Reg(14), 3), Reg(2)),
            Alu(AluOp.ADD, Imm(1), Reg(14), Reg(14)),
        )
        assert decode(encode(word)) == word

    def test_packed_shift_round_trips(self):
        word = InstructionWord.packed(
            Load(Displacement(Reg(14), 0), Reg(2)),
            Alu(AluOp.SLL, Reg(3), Imm(2), Reg(3)),
        )
        assert decode(encode(word)) == word


class TestDecodeErrors:
    def test_not_32_bits(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)

    def test_unknown_special_subop(self):
        with pytest.raises(EncodingError):
            decode(0b000_11111 << 24)


class TestNotesSurviveNothing:
    def test_note_lost_in_encoding(self):
        # documented: analysis notes are metadata, not architecture
        word = InstructionWord.single(Load(Absolute(5), Reg(1), note="load:8:char"))
        decoded = decode(encode(word))
        assert decoded == word  # equality ignores notes
        assert decoded.mem.note is None
