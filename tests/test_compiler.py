"""The compiler: layout, code generation, runtime library, options matrix."""

import pytest

from repro.compiler import (
    BooleanStrategy,
    CompileError,
    CompileOptions,
    Layout,
    LayoutStrategy,
    compile_source,
    piece_stream,
)
from repro.lang.types import (
    BOOLEAN,
    CHAR,
    INTEGER,
    ArrayType,
    RecordType,
)
from repro.sim import HazardMode, Machine


def run(source, options=None, inputs=None, max_steps=5_000_000):
    compiled = compile_source(source, options)
    machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED, inputs=inputs)
    machine.run(max_steps)
    return machine


def outputs(source, **kwargs):
    return run(source, **kwargs).output


class TestLayout:
    word = Layout(LayoutStrategy.WORD_ALLOCATED)
    byte = Layout(LayoutStrategy.BYTE_ALLOCATED)

    def test_scalars_one_word_either_way(self):
        for layout in (self.word, self.byte):
            assert layout.type_words(INTEGER) == 1
            assert layout.type_words(CHAR) == 1
            assert layout.type_words(BOOLEAN) == 1

    def test_unpacked_char_array(self):
        chars = ArrayType(0, 9, CHAR)
        assert self.word.type_words(chars) == 10   # a word per char
        assert self.byte.type_words(chars) == 3    # packed into bytes

    def test_packed_char_array_bytes_in_both(self):
        packed = ArrayType(0, 9, CHAR, packed=True)
        assert self.word.type_words(packed) == 3
        assert self.byte.type_words(packed) == 3

    def test_integer_array_unaffected(self):
        ints = ArrayType(0, 9, INTEGER)
        assert self.word.type_words(ints) == self.byte.type_words(ints) == 10

    def test_record_field_offsets(self):
        record = RecordType((("a", INTEGER), ("c", CHAR), ("b", INTEGER)))
        size, _ = self.word.record_layout(record)
        assert size == 3
        assert self.word.field_slot(record, "a").word_offset == 0
        assert self.word.field_slot(record, "b").word_offset == 2

    def test_byte_layout_packs_char_fields(self):
        record = RecordType((("a", INTEGER), ("c", CHAR), ("d", CHAR)))
        size, _ = self.byte.record_layout(record)
        assert size == 2  # one word for a, one byte-pool word for c+d
        slot_c = self.byte.field_slot(record, "c")
        slot_d = self.byte.field_slot(record, "d")
        assert slot_c.byte_grain and slot_d.byte_grain
        assert (slot_c.word_offset, slot_c.byte_offset) == (1, 0)
        assert (slot_d.word_offset, slot_d.byte_offset) == (1, 1)

    def test_globals_smaller_under_byte_layout(self):
        source = """
        program g;
        var text: array [0..99] of char;
            n: integer;
        begin n := 0 end.
        """
        word = compile_source(source, CompileOptions(layout=LayoutStrategy.WORD_ALLOCATED))
        byte = compile_source(source, CompileOptions(layout=LayoutStrategy.BYTE_ALLOCATED))
        assert word.unit.globals_words > byte.unit.globals_words


class TestExpressions:
    def test_arithmetic(self):
        assert outputs(
            "program p; begin writeln(2 + 3 * 4 - 1) end."
        ) == [13]

    def test_division_truncates_toward_zero(self):
        source = """
        program p;
        var a: integer;
        begin
          a := -7;
          writeln(a div 2);
          writeln(a mod 2);
          writeln(7 div -2);
          writeln(7 mod 2)
        end.
        """
        assert outputs(source) == [-3, -1, -3, 1]

    def test_division_by_zero_traps(self):
        from repro.sim import TrapInstruction

        source = """
        program p;
        var a, b: integer;
        begin a := 1; b := 0; writeln(a div b) end.
        """
        compiled = compile_source(source)
        machine = Machine(compiled.program)
        with pytest.raises(TrapInstruction):
            machine.run()

    def test_multiply_strength_reduction_matches_runtime(self):
        # powers of two and sparse constants avoid the runtime routine
        source = """
        program p;
        var x: integer;
        begin
          x := 7;
          writeln(x * 8);
          writeln(x * 12);
          writeln(x * 100);
          writeln(x * 31)
        end.
        """
        assert outputs(source) == [56, 84, 700, 217]

    def test_negative_multiplication(self):
        source = """
        program p;
        var a, b: integer;
        begin a := -5; b := 7; writeln(a * b); writeln(b * a) end.
        """
        assert outputs(source) == [-35, -35]

    def test_char_comparisons(self):
        source = """
        program p;
        var c: char;
        begin
          c := 'm';
          if (c >= 'a') and (c <= 'z') then writeln(1) else writeln(0)
        end.
        """
        assert outputs(source) == [1]

    def test_deep_expression(self):
        assert outputs(
            "program p; begin writeln(((1+2)*(3+4)) + ((5+6)*(7+8))) end."
        ) == [21 + 165]

    def test_ord_chr_abs_odd(self):
        source = """
        program p;
        begin
          writeln(ord('A'));
          writeln(ord(chr(66)));
          writeln(abs(-9));
          writeln(abs(9));
          if odd(3) then writeln(1) else writeln(0);
          if odd(4) then writeln(1) else writeln(0)
        end.
        """
        assert outputs(source) == [65, 66, 9, 9, 1, 0]


class TestBooleanStrategies:
    SOURCE = """
    program p;
    var rec, key, i: integer;
        found: boolean;
    begin
      rec := 5; key := 5; i := 7;
      found := (rec = key) or (i = 13);
      if found then writeln(1) else writeln(0);
      found := (rec = 4) and not (i = 13);
      if found then writeln(1) else writeln(0);
      found := not found;
      if found then writeln(1) else writeln(0)
    end.
    """

    @pytest.mark.parametrize("strategy", list(BooleanStrategy))
    def test_strategies_agree(self, strategy):
        options = CompileOptions(boolean_strategy=strategy)
        assert outputs(self.SOURCE, options=options) == [1, 0, 1]

    def test_setcond_strategy_emits_no_branches_for_stores(self):
        from repro.isa.pieces import SetCond

        source = """
        program p;
        var a, b: integer; f: boolean;
        begin a := 1; b := 2; f := (a = b) or (a < b) end.
        """
        stream = piece_stream(source, CompileOptions(
            boolean_strategy=BooleanStrategy.SET_CONDITIONALLY))
        assert any(isinstance(p, SetCond) for _l, p in stream)

    def test_branching_strategy_avoids_setcond(self):
        from repro.isa.pieces import SetCond

        source = """
        program p;
        var a, b: integer; f: boolean;
        begin a := 1; b := 2; f := (a = b) or (a < b) end.
        """
        stream = piece_stream(source, CompileOptions(
            boolean_strategy=BooleanStrategy.BRANCHING))
        assert not any(isinstance(p, SetCond) for _l, p in stream)


class TestDataStructures:
    def test_nested_arrays(self):
        source = """
        program p;
        var m: array [0..3] of array [0..3] of integer;
            i, j, total: integer;
        begin
          for i := 0 to 3 do
            for j := 0 to 3 do
              m[i][j] := i * 10 + j;
          total := 0;
          for i := 0 to 3 do total := total + m[i][i];
          writeln(total)
        end.
        """
        assert outputs(source) == [0 + 11 + 22 + 33]

    def test_array_of_records(self):
        source = """
        program p;
        type pt = record x, y: integer end;
        var a: array [0..2] of pt;
            i, s: integer;
        begin
          for i := 0 to 2 do begin
            a[i].x := i;
            a[i].y := i * i
          end;
          s := 0;
          for i := 0 to 2 do s := s + a[i].x + a[i].y;
          writeln(s)
        end.
        """
        assert outputs(source) == [0 + 0 + 1 + 1 + 2 + 4]

    def test_record_with_char_fields_both_layouts(self):
        source = """
        program p;
        type entry = record tag: char; count: integer; mark: char end;
        var e: entry;
        begin
          e.tag := 'x';
          e.count := 42;
          e.mark := 'y';
          write(e.tag);
          writeln(e.count);
          write(e.mark)
        end.
        """
        for layout in LayoutStrategy:
            machine = run(source, CompileOptions(layout=layout))
            assert machine.output == [42]
            assert "x" in machine.output_text and "y" in machine.output_text

    def test_nonlocal_array_bounds(self):
        source = """
        program p;
        var a: array [5..9] of integer;
            i: integer;
        begin
          for i := 5 to 9 do a[i] := i;
          writeln(a[5] + a[9])
        end.
        """
        assert outputs(source) == [14]

    def test_byte_array_boundaries(self):
        # bytes crossing word boundaries in a packed array
        source = """
        program p;
        var s: packed array [0..7] of char;
            i, total: integer;
        begin
          for i := 0 to 7 do s[i] := chr(i + 1);
          total := 0;
          for i := 0 to 7 do total := total + ord(s[i]);
          writeln(total)
        end.
        """
        for layout in LayoutStrategy:
            assert outputs(source, options=CompileOptions(layout=layout)) == [36]


class TestProceduresAndFunctions:
    def test_recursion_depth(self):
        source = """
        program p;
        function depth(n: integer): integer;
        begin
          if n = 0 then depth := 0 else depth := depth(n - 1) + 1
        end;
        begin writeln(depth(150)) end.
        """
        assert outputs(source) == [150]

    def test_mutual_style_calls(self):
        source = """
        program p;
        var total: integer;
        function double(n: integer): integer;
        begin double := n * 2 end;
        function quad(n: integer): integer;
        begin quad := double(double(n)) end;
        begin writeln(quad(5)) end.
        """
        assert outputs(source) == [20]

    def test_var_param_array_element(self):
        source = """
        program p;
        var a: array [0..3] of integer;
        procedure bump(var x: integer);
        begin x := x + 1 end;
        begin
          a[2] := 10;
          bump(a[2]);
          writeln(a[2])
        end.
        """
        assert outputs(source) == [11]

    def test_var_param_through_chain(self):
        source = """
        program p;
        var g: integer;
        procedure inner(var x: integer);
        begin x := x * 3 end;
        procedure outer(var y: integer);
        begin inner(y) end;
        begin g := 7; outer(g); writeln(g) end.
        """
        assert outputs(source) == [21]

    def test_many_arguments(self):
        source = """
        program p;
        function sum6(a, b, c, d, e, f: integer): integer;
        begin sum6 := a + b + c + d + e + f end;
        begin writeln(sum6(1, 2, 3, 4, 5, 6)) end.
        """
        assert outputs(source) == [21]

    def test_function_result_in_nested_calls_with_live_temps(self):
        source = """
        program p;
        function f(n: integer): integer;
        begin f := n + 1 end;
        begin writeln(f(1) + f(2) * f(3)) end.
        """
        assert outputs(source) == [2 + 3 * 4]

    def test_register_allocation_matches_memory_variables(self):
        source = """
        program p;
        var total: integer;
        function work(n: integer): integer;
        var i, acc: integer;
        begin
          acc := 0;
          for i := 1 to n do acc := acc + i * i;
          work := acc
        end;
        begin writeln(work(10)) end.
        """
        with_ra = outputs(source, options=CompileOptions(register_allocation=True))
        without = outputs(source, options=CompileOptions(register_allocation=False))
        assert with_ra == without == [385]

    def test_addressed_variable_not_registered(self):
        # x is passed by reference: it must live in memory even with
        # register allocation on
        source = """
        program p;
        procedure setit(var v: integer);
        begin v := 99 end;
        function f: integer;
        var x, i, acc: integer;
        begin
          x := 1;
          acc := 0;
          for i := 1 to 8 do acc := acc + x;  { x is hot }
          setit(x);
          f := acc + x
        end;
        begin writeln(f) end.
        """
        assert outputs(source) == [8 + 99]


class TestControlFlow:
    def test_for_zero_iterations(self):
        source = """
        program p;
        var i, n: integer;
        begin
          n := 0;
          for i := 5 to 4 do n := n + 1;
          writeln(n)
        end.
        """
        assert outputs(source) == [0]

    def test_for_downto(self):
        source = """
        program p;
        var i, n: integer;
        begin
          n := 0;
          for i := 5 downto 1 do n := n * 10 + i;
          writeln(n)
        end.
        """
        assert outputs(source) == [54321]

    def test_for_limit_evaluated_once(self):
        source = """
        program p;
        var i, n, count: integer;
        begin
          n := 3;
          count := 0;
          for i := 1 to n do begin
            n := 100;  { must not extend the loop }
            count := count + 1
          end;
          writeln(count)
        end.
        """
        assert outputs(source) == [3]

    def test_while_false_never_runs(self):
        source = """
        program p;
        var n: integer;
        begin
          n := 7;
          while false do n := 0;
          writeln(n)
        end.
        """
        assert outputs(source) == [7]

    def test_repeat_runs_at_least_once(self):
        source = """
        program p;
        var n: integer;
        begin
          n := 0;
          repeat n := n + 1 until true;
          writeln(n)
        end.
        """
        assert outputs(source) == [1]


class TestIO:
    def test_read_int(self):
        source = """
        program p;
        var x, y: integer;
        begin read(x); read(y); writeln(x + y) end.
        """
        assert outputs(source, inputs=[30, 12]) == [42]

    def test_write_string_and_chars(self):
        machine = run("program p; begin write('ok: '); write('!'); writeln end.")
        assert machine.output_text == "ok: !\n"

    def test_write_boolean_as_integer(self):
        source = "program p; var b: boolean; begin b := true; writeln(b) end."
        assert outputs(source) == [1]


class TestErrors:
    def test_string_outside_write(self):
        from repro.lang import SemanticError

        with pytest.raises(SemanticError):
            compile_source("program p; var c: char; begin c := 'xy' end.")
