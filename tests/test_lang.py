"""Mini-Pascal front end: lexer, parser, type checker."""

import pytest

from repro.lang import (
    BOOLEAN,
    CHAR,
    INTEGER,
    ArrayType,
    LexError,
    ParseError,
    RecordType,
    SemanticError,
    analyze,
    ast,
    parse_program,
    tokenize,
)
from repro.lang.lexer import Kind


class TestLexer:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("begin banana end")
        assert [t.kind for t in tokens[:3]] == [Kind.KEYWORD, Kind.IDENT, Kind.KEYWORD]

    def test_case_insensitive(self):
        assert tokenize("BEGIN")[0].is_keyword("begin")

    def test_numbers(self):
        assert tokenize("42")[0].value == 42

    def test_char_literal(self):
        token = tokenize("'a'")[0]
        assert token.kind is Kind.CHAR and token.value == 97

    def test_escaped_quote(self):
        assert tokenize("''''")[0].value == ord("'")

    def test_string_literal(self):
        token = tokenize("'hello'")[0]
        assert token.kind is Kind.STRING and token.text == "hello"

    def test_range_dots_not_eaten_by_number(self):
        kinds = [t.text for t in tokenize("1..5")[:3]]
        assert kinds == ["1", "..", "5"]

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize(":= <= >= <> ..")[:5]]
        assert texts == [":=", "<=", ">=", "<>", ".."]

    def test_comments_skipped(self):
        tokens = tokenize("a { comment } b (* another *) c")
        assert [t.text for t in tokens[:3]] == ["a", "b", "c"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("{ forever")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]


MINIMAL = "program p; begin end."


class TestParser:
    def test_minimal_program(self):
        program = parse_program(MINIMAL)
        assert program.name == "p"
        assert program.body.body == []

    def test_missing_final_dot(self):
        with pytest.raises(ParseError):
            parse_program("program p; begin end")

    def test_precedence_relational_loosest(self):
        program = parse_program("program p; var x: boolean; begin x := 1 + 2 < 3 * 4 end.")
        assign = program.body.body[0]
        assert assign.value.op == "<"
        assert assign.value.left.op == "+"
        assert assign.value.right.op == "*"

    def test_pascal_and_binds_like_multiplication(self):
        program = parse_program(
            "program p; var a, b, c: boolean; begin a := a or b and c end."
        )
        expr = program.body.body[0].value
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_unary_minus(self):
        program = parse_program("program p; var x: integer; begin x := -x end.")
        assert isinstance(program.body.body[0].value, ast.UnOp)

    def test_dangling_else_binds_inner(self):
        program = parse_program(
            "program p; var x: integer; begin "
            "if x = 1 then if x = 2 then x := 3 else x := 4 end."
        )
        outer = program.body.body[0]
        assert outer.else_branch is None
        assert outer.then_branch.else_branch is not None

    def test_array_type(self):
        program = parse_program(
            "program p; var a: packed array [1..10] of char; begin end."
        )
        decl = program.global_vars[0]
        assert decl.type_expr.packed and decl.type_expr.low == 1

    def test_record_type(self):
        program = parse_program(
            "program p; type r = record x, y: integer; c: char end; begin end."
        )
        fields = program.types[0].type_expr.fields
        assert [name for name, _t in fields] == ["x", "y", "c"]

    def test_var_params(self):
        program = parse_program(
            "program p; procedure q(var a: integer; b: char); begin end; begin end."
        )
        params = program.routines[0].params
        assert params[0].by_ref and not params[1].by_ref

    def test_for_downto(self):
        program = parse_program(
            "program p; var i: integer; begin for i := 10 downto 1 do i := i end."
        )
        assert program.body.body[0].downto

    def test_repeat_until(self):
        program = parse_program(
            "program p; var i: integer; begin repeat i := i + 1 until i = 3 end."
        )
        assert isinstance(program.body.body[0], ast.Repeat)

    def test_field_and_index_chain(self):
        program = parse_program(
            "program p; type r = record f: array [0..3] of integer end;"
            "var v: array [0..1] of r; x: integer; begin x := v[0].f[1] end."
        )
        value = program.body.body[0].value
        assert isinstance(value, ast.Index)
        assert isinstance(value.base, ast.FieldAccess)


class TestSemantic:
    def test_type_annotation(self):
        checked = analyze("program p; var x: integer; begin x := 1 + 2 end.")
        assign = checked.ast.body.body[0]
        assert assign.value.type == INTEGER

    def test_boolean_condition_required(self):
        with pytest.raises(SemanticError, match="boolean"):
            analyze("program p; var x: integer; begin if x then x := 1 end.")

    def test_assignment_type_mismatch(self):
        with pytest.raises(SemanticError):
            analyze("program p; var x: integer; c: char; begin x := c end.")

    def test_undefined_variable(self):
        with pytest.raises(SemanticError, match="undefined"):
            analyze("program p; begin x := 1 end.")

    def test_duplicate_variable(self):
        with pytest.raises(SemanticError, match="redefined"):
            analyze("program p; var x: integer; x: char; begin end.")

    def test_const_usable_as_value(self):
        checked = analyze("program p; const k = 5; var x: integer; begin x := k end.")
        value = checked.ast.body.body[0].value
        assert getattr(value, "const_value", None) == 5

    def test_indexing_non_array(self):
        with pytest.raises(SemanticError, match="non-array"):
            analyze("program p; var x: integer; begin x := x[0] end.")

    def test_unknown_field(self):
        with pytest.raises(SemanticError, match="no field"):
            analyze(
                "program p; type r = record a: integer end; var v: r;"
                "begin v.b := 1 end."
            )

    def test_call_arity(self):
        with pytest.raises(SemanticError, match="arguments"):
            analyze(
                "program p; var x: integer;"
                "function f(a: integer): integer; begin f := a end;"
                "begin x := f(1, 2) end."
            )

    def test_var_param_needs_variable(self):
        with pytest.raises(SemanticError, match="needs a variable"):
            analyze(
                "program p; procedure q(var a: integer); begin end;"
                "begin q(1 + 2) end."
            )

    def test_function_used_as_procedure_allowed(self):
        analyze(
            "program p; function f: integer; begin f := 1 end; begin f end."
        )

    def test_procedure_in_expression_rejected(self):
        with pytest.raises(SemanticError):
            analyze(
                "program p; var x: integer; procedure q; begin end;"
                "begin x := q() end."
            )

    def test_implicit_parameterless_call(self):
        checked = analyze(
            "program p; var x: integer;"
            "function three: integer; begin three := 3 end;"
            "begin x := three end."
        )
        value = checked.ast.body.body[0].value
        assert getattr(value, "implicit_call", False)

    def test_function_result_assignment(self):
        checked = analyze(
            "program p; function f(n: integer): integer; begin f := n end;"
            "begin end."
        )
        assert checked.routines["f"].result == INTEGER

    def test_builtins(self):
        checked = analyze(
            "program p; var x: integer; c: char; b: boolean;"
            "begin x := ord(c); c := chr(x); x := abs(x); b := odd(x) end."
        )
        assert checked is not None

    def test_for_variable_must_be_integer(self):
        with pytest.raises(SemanticError):
            analyze("program p; var c: char; begin for c := 1 to 3 do c := c end.")

    def test_functions_return_scalars_only(self):
        with pytest.raises(SemanticError, match="scalars"):
            analyze(
                "program p; type a = array [0..1] of integer;"
                "function f: a; begin end; begin end."
            )
