"""Cycle-cost model behind Tables 9/10."""

import pytest

from repro.isa.costs import (
    BYTE_ADDRESSING_OVERHEAD_HIGH,
    BYTE_ADDRESSING_OVERHEAD_LOW,
    CostRange,
    MemOperation,
    byte_machine_costs,
    table9,
    word_machine_costs,
)


class TestCostRange:
    def test_point(self):
        r = CostRange.point(4)
        assert r.lo == r.hi == 4

    def test_add(self):
        assert (CostRange(1, 2) + CostRange(3, 4)) == CostRange(4, 6)

    def test_scaled(self):
        assert CostRange(8, 12).scaled(0.5) == CostRange(4, 6)

    def test_repr_forms(self):
        assert repr(CostRange.point(4)) == "4"
        assert repr(CostRange(8, 12)) == "8-12"


class TestTable9Values:
    """The exact Table 9 cells."""

    def test_byte_machine_without_overhead(self):
        costs = byte_machine_costs(0.0)
        assert costs[MemOperation.LOAD_WORD] == CostRange.point(4)
        assert costs[MemOperation.LOAD_BYTE] == CostRange.point(6)
        assert costs[MemOperation.LOAD_FROM_ARRAY] == CostRange.point(4)

    def test_byte_machine_with_15_percent(self):
        costs = byte_machine_costs(0.15)
        assert costs[MemOperation.LOAD_WORD].lo == pytest.approx(4.6)
        assert costs[MemOperation.LOAD_BYTE].lo == pytest.approx(6.9)

    def test_word_machine(self):
        costs = word_machine_costs()
        assert costs[MemOperation.LOAD_WORD] == CostRange.point(4)
        assert costs[MemOperation.LOAD_FROM_ARRAY] == CostRange.point(6)
        assert costs[MemOperation.STORE_INTO_ARRAY] == CostRange(8, 12)
        assert costs[MemOperation.LOAD_BYTE] == CostRange.point(8)
        assert costs[MemOperation.STORE_BYTE] == CostRange(10, 18)

    def test_word_machine_pays_nothing_on_words(self):
        """The key asymmetry: word refs cost the same as a byte machine
        without overhead, and less than one with."""
        word = word_machine_costs()[MemOperation.LOAD_WORD]
        byte = byte_machine_costs(BYTE_ADDRESSING_OVERHEAD_LOW)[MemOperation.LOAD_WORD]
        assert word.hi < byte.lo

    def test_table9_has_all_rows(self):
        rows = table9()
        assert set(rows) == set(MemOperation)
        for plain, with_overhead, mips in rows.values():
            assert with_overhead.lo >= plain.lo

    def test_overhead_bounds(self):
        assert 0 < BYTE_ADDRESSING_OVERHEAD_LOW < BYTE_ADDRESSING_OVERHEAD_HIGH <= 0.25
