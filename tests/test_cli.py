"""Command-line entry points: step-budget diagnostics and the farm CLI."""

import importlib.util
import json
import os

import pytest

from repro.cli import (
    EXIT_STEP_BUDGET,
    compile_main,
    experiments_main,
    farm_main,
    sim_main,
)

RUNAWAY_ASM = """
start:  jmp start
        nop
"""

RUNAWAY_PASCAL = """
program spin;
var i: integer;
begin
  i := 0;
  while i < 1000000000 do
    i := i + 1
end.
"""


@pytest.fixture
def runaway_asm(tmp_path):
    path = tmp_path / "loop.s"
    path.write_text(RUNAWAY_ASM)
    return str(path)


class TestStepBudgetDiagnostic:
    def test_sim_reports_runaway_instead_of_hanging(self, runaway_asm, capsys):
        code = sim_main([runaway_asm, "--max-steps", "10000"])
        assert code == EXIT_STEP_BUDGET
        err = capsys.readouterr().err
        assert "did not halt within 10000 steps" in err
        assert "--max-steps" in err

    def test_compile_reports_runaway_instead_of_hanging(self, tmp_path, capsys):
        path = tmp_path / "spin.pas"
        path.write_text(RUNAWAY_PASCAL)
        code = compile_main([str(path), "--max-steps", "10000"])
        assert code == EXIT_STEP_BUDGET
        err = capsys.readouterr().err
        assert "did not halt within 10000 steps" in err

    def test_well_behaved_program_still_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "halt.s"
        path.write_text("start: trap #0\n       nop\n")
        assert sim_main([str(path)]) == 0


class TestExperimentsJobsFlag:
    NAMES = ["table5", "figure2"]

    def test_jobs_flag_does_not_change_output(self, capsys):
        assert experiments_main(self.NAMES + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert experiments_main(self.NAMES + ["--jobs", "2"]) == 0
        sharded = capsys.readouterr().out
        assert serial == sharded
        assert "== Table 5" in serial

    def test_unknown_experiment_is_an_argparse_error(self):
        with pytest.raises(SystemExit):
            experiments_main(["not_a_table"])

    def test_results_file_streams_records(self, tmp_path, capsys):
        out = tmp_path / "records.jsonl"
        assert experiments_main(["table5", "--results", str(out)]) == 0
        capsys.readouterr()
        (record,) = [json.loads(l) for l in out.read_text().splitlines() if l.strip()]
        assert record["name"] == "table5"
        assert record["status"] == "ok"


class TestFarmCli:
    def test_run_then_status_roundtrip(self, tmp_path, capsys):
        results = tmp_path / "farm.jsonl"
        code = farm_main(
            [
                "run",
                "--workload",
                "scanner",
                "--workload",
                "logic",
                "--jobs",
                "2",
                "--results",
                str(results),
            ]
        )
        run_out = capsys.readouterr().out
        assert code == 0
        assert "scanner" in run_out and "logic" in run_out
        assert "2 jobs" in run_out

        assert farm_main(["status", str(results)]) == 0
        status_out = capsys.readouterr().out
        assert "jobs:        2" in status_out
        assert "ok=2" in status_out
        # the digest in status must match the one printed by run
        digest_lines = [l for l in run_out.splitlines() if l.startswith("digest:")]
        assert digest_lines and digest_lines[0] in status_out

    def test_failing_batch_exits_nonzero(self, capsys):
        code = farm_main(["run", "--workload", "scanner", "--max-steps", "10"])
        assert code == 1
        out = capsys.readouterr().out
        assert "timeout" in out

    def test_unknown_workload_is_an_argparse_error(self):
        with pytest.raises(SystemExit):
            farm_main(["run", "--workload", "nonsense"])


def _load_bench_report():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(repo_root, "tools", "bench_report.py")
    spec = importlib.util.spec_from_file_location("bench_report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchGateMessage:
    def test_names_worst_regressor_first(self):
        bench_report = _load_bench_report()
        failures = [("test_compiler_throughput", 1.25), ("test_simulator_throughput", 1.80)]
        message = bench_report.format_gate_failure(failures, threshold=0.20)
        first_line = message.splitlines()[0]
        assert "worst regression: test_simulator_throughput" in first_line
        assert "180%" in first_line
        assert "test_compiler_throughput (1.25x)" in message

    def test_single_failure_has_no_also_line(self):
        bench_report = _load_bench_report()
        message = bench_report.format_gate_failure([("test_kernel_boot_throughput", 1.5)], 0.20)
        assert "also regressed" not in message
        assert "test_kernel_boot_throughput" in message


FAULTING_ASM = """
start:  lim #1048575, r1
        sll r1, #4, r1
        ld 0(r1), r2
        nop
        trap #0
"""


class TestGuestFailureDiagnostic:
    """A dead guest exits with a structured record, not a traceback."""

    def test_faulting_program_exits_with_panic_code(self, tmp_path, capsys):
        from repro.cli import EXIT_PANIC

        path = tmp_path / "fault.s"
        path.write_text(FAULTING_ASM)
        code = sim_main([str(path)])
        assert code == EXIT_PANIC
        err = capsys.readouterr().err
        assert "FAULT:" in err
        record = json.loads(err.strip().splitlines()[-1])
        assert record["fault"] == "BusError"
        assert record["cause"] == "BUS_ERROR"
        assert len(record["xra"]) == 3

    def test_panic_record_shape_matches_chaos_contract(self):
        # the CLI prints KernelPanic.record() verbatim; the chaos
        # invariant checker vets the very same shape
        from repro.chaos import check_panic_record
        from repro.sim import KernelPanic

        from repro.sim import ExceptionCause

        exc = KernelPanic(ExceptionCause.TRAP, 1, ExceptionCause.OVERFLOW, 0, [1, 2, 3], 7)
        assert set(exc.record()) >= {
            "panic", "handling_cause", "handling_minor",
            "fault_cause", "fault_minor", "xra", "pc",
        }
        assert check_panic_record(exc.record()) == []
