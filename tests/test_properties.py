"""Property-based end-to-end tests.

The heavyweight invariant: a randomly generated mini-Pascal program,
compiled at any optimization level and run on the *checking* simulator
(which raises on any violated pipeline constraint), computes exactly
what a Python evaluation of the same expressions computes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import BooleanStrategy, CompileOptions, compile_source
from repro.isa.bits import MAX_INT32, MIN_INT32, s32, u32
from repro.reorg import ALL_LEVELS, OptLevel
from repro.sim import HazardMode, Machine


# ---------------------------------------------------------------------------
# random integer expressions
# ---------------------------------------------------------------------------

_VARS = ("va", "vb", "vc")


def int_exprs(depth: int):
    """(source text, python evaluator) pairs for integer expressions."""
    leaf = st.one_of(
        st.integers(0, 200).map(lambda v: (str(v), lambda env, v=v: v)),
        st.sampled_from(_VARS).map(lambda n: (n, lambda env, n=n: env[n])),
    )
    if depth == 0:
        return leaf

    def combine(children):
        op = children[0]
        (ls, lf), (rs, rf) = children[1], children[2]
        if op == "+":
            return (f"({ls} + {rs})", lambda env: wrap(lf(env) + rf(env)))
        if op == "-":
            return (f"({ls} - {rs})", lambda env: wrap(lf(env) - rf(env)))
        if op == "*":
            return (f"({ls} * {rs})", lambda env: wrap(lf(env) * rf(env)))
        if op == "div":
            return (
                f"({ls} div (1 + abs({rs})))",
                lambda env: pascal_div(lf(env), 1 + abs_wrap(rf(env))),
            )
        return (
            f"({ls} mod (1 + abs({rs})))",
            lambda env: pascal_mod(lf(env), 1 + abs_wrap(rf(env))),
        )

    sub = int_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*", "div", "mod"]), sub, sub).map(combine),
    )


def wrap(value: int) -> int:
    return s32(u32(value))


def abs_wrap(value: int) -> int:
    return abs(wrap(value)) if wrap(value) != MIN_INT32 else 0


def pascal_div(a, b):
    q = abs(a) // abs(b)
    return wrap(q if (a < 0) == (b < 0) else -q)


def pascal_mod(a, b):
    return wrap(a - pascal_div(a, b) * b)


@settings(max_examples=30, deadline=None)
@given(
    int_exprs(3),
    st.integers(-100, 100),
    st.integers(-100, 100),
    st.integers(-100, 100),
)
def test_random_integer_expressions(expr, a, b, c):
    source_text, evaluate = expr
    env = {"va": a, "vb": b, "vc": c}
    source = f"""
    program rnd;
    var va, vb, vc, r: integer;
    begin
      va := {a}; vb := {b}; vc := {c};
      r := {source_text};
      writeln(r)
    end.
    """
    compiled = compile_source(source)
    machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
    machine.run(5_000_000)
    expected = wrap(evaluate(env))
    assert machine.output == [expected], source_text


# ---------------------------------------------------------------------------
# random boolean expressions, both strategies
# ---------------------------------------------------------------------------


def bool_exprs(depth: int):
    relop = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
    leaf = st.tuples(relop, st.sampled_from(_VARS), st.sampled_from(_VARS)).map(
        lambda t: (
            f"({t[1]} {t[0]} {t[2]})",
            lambda env, t=t: {
                "=": env[t[1]] == env[t[2]],
                "<>": env[t[1]] != env[t[2]],
                "<": env[t[1]] < env[t[2]],
                "<=": env[t[1]] <= env[t[2]],
                ">": env[t[1]] > env[t[2]],
                ">=": env[t[1]] >= env[t[2]],
            }[t[0]],
        )
    )
    if depth == 0:
        return leaf

    def combine(children):
        op, (ls, lf), (rs, rf) = children
        if op == "and":
            return (f"({ls} and {rs})", lambda env: lf(env) and rf(env))
        if op == "or":
            return (f"({ls} or {rs})", lambda env: lf(env) or rf(env))
        return (f"(not {ls})", lambda env: not lf(env))

    sub = bool_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["and", "or", "not"]), sub, sub).map(combine),
    )


@settings(max_examples=25, deadline=None)
@given(
    bool_exprs(3),
    st.integers(-5, 5),
    st.integers(-5, 5),
    st.integers(-5, 5),
    st.sampled_from(list(BooleanStrategy)),
)
def test_random_boolean_expressions(expr, a, b, c, strategy):
    source_text, evaluate = expr
    env = {"va": a, "vb": b, "vc": c}
    source = f"""
    program rnd;
    var va, vb, vc: integer;
        f: boolean;
    begin
      va := {a}; vb := {b}; vc := {c};
      f := {source_text};
      if f then writeln(1) else writeln(0);
      if {source_text} then writeln(1) else writeln(0)
    end.
    """
    compiled = compile_source(source, CompileOptions(boolean_strategy=strategy))
    machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
    machine.run(5_000_000)
    expected = 1 if evaluate(env) else 0
    assert machine.output == [expected, expected], source_text


# ---------------------------------------------------------------------------
# reorganizer equivalence on random straight-line register programs
# ---------------------------------------------------------------------------


def random_piece_program(draw_ops):
    """Assembly text from a list of (op, a, b, dst) tuples."""
    lines = ["start:  lim #4096, r10"]
    for op, a, b, dst in draw_ops:
        if op == "ld":
            lines.append(f"        ld {a % 8}(r10), r{dst}")
        elif op == "st":
            lines.append(f"        st r{2 + a % 6}, {b % 8}(r10)")
        else:
            lines.append(f"        {op} r{2 + a % 6}, r{2 + b % 6}, r{dst}")
    lines.append("        mov r2, r1")
    lines.append("        trap #1")
    lines.append("        mov r7, r1")
    lines.append("        trap #1")
    lines.append("        trap #0")
    return "\n".join(lines)


op_tuples = st.tuples(
    st.sampled_from(["add", "sub", "xor", "and", "or", "ld", "st"]),
    st.integers(0, 7),
    st.integers(0, 7),
    st.integers(2, 8),
)


@settings(max_examples=30, deadline=None)
@given(st.lists(op_tuples, min_size=3, max_size=20))
def test_reorganizer_equivalence_on_random_programs(ops):
    from repro.asm import assemble_pieces
    from repro.reorg import reorganize

    source = random_piece_program(ops)
    stream = assemble_pieces(source)
    outputs = []
    counts = []
    for level in ALL_LEVELS:
        result = reorganize(stream, level)
        program = result.to_program(entry_symbol="start")
        machine = Machine(program, hazard_mode=HazardMode.CHECKED)
        machine.run(10_000)
        outputs.append(machine.output)
        counts.append(result.static_count)
    assert all(o == outputs[0] for o in outputs), source
    assert counts == sorted(counts, reverse=True), source


# ---------------------------------------------------------------------------
# layout equivalence: byte vs word allocation compute identically
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=12), st.integers(0, 11))
def test_layout_equivalence_on_char_arrays(values, probe):
    from repro.compiler import LayoutStrategy

    probe = probe % len(values)
    sets = "\n".join(
        f"  s[{i}] := chr({v});" for i, v in enumerate(values)
    )
    source = f"""
    program layoutprop;
    var s: array [0..{len(values) - 1}] of char;
        total, i: integer;
    begin
{sets}
      total := 0;
      for i := 0 to {len(values) - 1} do total := total + ord(s[i]);
      writeln(total);
      writeln(ord(s[{probe}]))
    end.
    """
    results = []
    for layout in LayoutStrategy:
        compiled = compile_source(source, CompileOptions(layout=layout))
        machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
        machine.run(5_000_000)
        results.append(machine.output)
    assert results[0] == results[1] == [sum(values), values[probe]]
