"""Decoder robustness: arbitrary 32-bit patterns never crash the decoder.

Every pattern either decodes to a valid instruction word (which must
re-encode to an equivalent word) or raises ``EncodingError`` -- no
other exception type, ever.  This is what the CPU's illegal-instruction
path relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoding import EncodingError, decode, encode
from repro.sim import IllegalInstruction, Machine
from repro.asm import assemble


@settings(max_examples=400, deadline=None)
@given(st.integers(0, (1 << 32) - 1))
def test_decode_is_total(bits):
    try:
        word = decode(bits, addr=100)
    except (EncodingError, ValueError):
        return  # rejected cleanly
    # whatever decoded must re-encode and decode to the same thing
    recoded = encode(word, addr=100)
    assert decode(recoded, addr=100) == word


@settings(max_examples=100, deadline=None)
@given(st.integers(0, (1 << 32) - 1))
def test_decode_stability(bits):
    """decode(encode(decode(x))) is a fixpoint when x decodes at all."""
    try:
        first = decode(bits, addr=7)
    except (EncodingError, ValueError):
        return
    second = decode(encode(first, addr=7), addr=7)
    assert second == first


def test_cpu_raises_illegal_on_undecodable_word():
    machine = Machine(assemble("start: nop"))
    # plant an undecodable pattern (unknown special subop) and run into it
    machine.memory.poke(1, 0b000_11111 << 24)
    machine.cpu.pc = 1
    with pytest.raises(IllegalInstruction):
        machine.cpu.step()


@settings(max_examples=40, deadline=None)
@given(st.integers(0, (1 << 30) - 1))
def test_generated_word_streams_execute_on_every_engine(seed):
    """Arbitrary assembled word sequences *execute*, not just decode:
    the seeded stream generator exercises branch/delay-slot corners,
    immediate boundaries, packed pairs, and call chains, and all three
    engines must agree on the complete outcome with no exception
    outside the machine contract (fault/timeout)."""
    from repro.fuzz.oracle import check_word_source
    from repro.fuzz.wordgen import generate_word_units, render_word_case

    source = render_word_case(generate_word_units(seed, 0))
    result = check_word_source(source, max_steps=50_000)
    assert not result.failed, result.divergences


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=24),
    st.integers(0, (1 << 16) - 1),
)
def test_random_planted_words_agree_across_engines(words, salt):
    """Raw 32-bit patterns planted in memory run identically on the
    reference stepper, the fast path, and the JIT: same contract
    outcome (clean stop, fault type, or step-budget timeout), same
    final state fingerprint, same output."""
    from repro.sim import MachineFault, state_fingerprint

    outcomes = []
    for fast, jit in ((False, False), (True, False), (True, True)):
        machine = Machine(assemble("start: nop"))
        for offset, bits in enumerate(words):
            machine.memory.poke(1 + offset, bits ^ salt)
        outcome = "ok"
        try:
            machine.run(len(words) + 40, fast=fast, jit=jit)
        except TimeoutError:
            outcome = "timeout"
        except MachineFault as exc:
            outcome = type(exc).__name__
        outcomes.append(
            (outcome, state_fingerprint(machine.cpu), list(machine.output))
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_executing_data_as_code_is_defined():
    """Zeroed memory decodes as no-ops: running off the end of a program
    is a silent nop sled until something faults -- deterministic, not a
    Python crash."""
    machine = Machine(assemble("start: nop"))
    machine.cpu.pc = 50
    for _ in range(10):
        machine.cpu.step()
    assert machine.cpu.pc == 60
    assert machine.stats.noops == 10
