"""Constant classification and materialization (Table 1 machinery)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.bits import s32
from repro.isa.immediates import (
    ConstantClass,
    classify_constant,
    fits_imm4,
    fits_imm4_reversed,
    fits_movi,
    materialize,
    synthesize_large,
)
from repro.isa.operations import AluOp, alu_evaluate
from repro.isa.pieces import Alu, Imm, LoadImm, MovImm
from repro.isa.registers import Reg


class TestClassification:
    @pytest.mark.parametrize(
        "value,bucket",
        [
            (0, ConstantClass.ZERO),
            (1, ConstantClass.ONE),
            (-1, ConstantClass.ONE),
            (2, ConstantClass.TWO),
            (3, ConstantClass.SMALL),
            (15, ConstantClass.SMALL),
            (16, ConstantClass.BYTE),
            (255, ConstantClass.BYTE),
            (-200, ConstantClass.BYTE),
            (256, ConstantClass.LARGE),
            (1 << 30, ConstantClass.LARGE),
        ],
    )
    def test_buckets(self, value, bucket):
        assert classify_constant(value) == bucket

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_every_constant_has_a_bucket(self, value):
        assert classify_constant(value) in ConstantClass


class TestFitPredicates:
    def test_imm4(self):
        assert fits_imm4(0) and fits_imm4(15)
        assert not fits_imm4(16) and not fits_imm4(-1)

    def test_imm4_reversed(self):
        assert fits_imm4_reversed(-15) and fits_imm4_reversed(0)
        assert not fits_imm4_reversed(1) and not fits_imm4_reversed(-16)

    def test_movi(self):
        assert fits_movi(255)
        assert not fits_movi(-1) and not fits_movi(256)


def _simulate(pieces, dst):
    """Interpret a short materialization sequence."""
    regs = {}
    for piece in pieces:
        if isinstance(piece, Alu):
            s1 = piece.s1.value if isinstance(piece.s1, Imm) else regs.get(piece.s1.number, 0)
            s2 = piece.s2.value if isinstance(piece.s2, Imm) else regs.get(piece.s2.number, 0)
            regs[piece.dst.number] = alu_evaluate(piece.op, s1, s2)
        elif isinstance(piece, (MovImm, LoadImm)):
            regs[piece.dst.number] = piece.value & 0xFFFFFFFF
    return regs.get(dst.number, 0)


class TestMaterialization:
    @pytest.mark.parametrize("value,expected_len", [(0, 1), (7, 1), (-3, 1), (200, 1), (100000, 1)])
    def test_instruction_counts(self, value, expected_len):
        assert len(materialize(value, Reg(1))) == expected_len

    def test_small_uses_mov(self):
        (piece,) = materialize(5, Reg(1))
        assert isinstance(piece, Alu) and piece.op is AluOp.MOV

    def test_negative_uses_reverse_subtract(self):
        (piece,) = materialize(-7, Reg(1))
        assert isinstance(piece, Alu) and piece.op is AluOp.RSUB

    def test_byte_uses_movi(self):
        (piece,) = materialize(200, Reg(1))
        assert isinstance(piece, MovImm)

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            materialize(1 << 21, Reg(1))

    @given(st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 1))
    def test_materialize_produces_the_value(self, value):
        dst = Reg(1)
        assert s32(_simulate(materialize(value, dst), dst)) == value

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_synthesize_large_produces_the_value(self, value):
        dst, scratch = Reg(1), Reg(2)
        result = _simulate(synthesize_large(value, dst, scratch), dst)
        assert s32(result) == value
