"""The chaos subsystem: deterministic fault injection with recovery checks.

Covers the four contracts the subsystem ships:

- **determinism** -- a seed fully determines the plan, every injection
  record, and the campaign digest (same seed, byte-identical results);
- **recovery verification** -- all shipped campaigns pass the recovery
  contract with zero violations on both execution engines;
- **double-fault panic** -- a fault delivered inside a handler dies as a
  structured PANIC record, not silent state loss;
- **operability** -- campaigns run as farm jobs, dead workers leave
  replayable failure records, and the shrinker minimizes failing plans.
"""

import filecmp

import pytest

from repro.asm import assemble
from repro.chaos import (
    CAMPAIGNS,
    RecoveryContractChecker,
    check_panic_record,
    injection,
    make_plan,
    run_campaign,
    run_plan,
    shortest_failing_prefix,
)
from repro.chaos.campaigns import _baseline, _counting_source
from repro.cli import chaos_main
from repro.farm.job import chaos_jobs
from repro.farm.scheduler import Scheduler
from repro.farm.worker import crash_record, execute_job
from repro.sim.faults import KernelPanic, OverflowTrap
from repro.system.kernel import Kernel

SEED = 7


def _kernel_with(sources):
    kernel = Kernel(quantum=300)
    for source in sources:
        kernel.add_process(assemble(source))
    kernel.boot()
    return kernel


def _step_until(kernel, predicate, limit=30_000):
    for _ in range(limit):
        if predicate(kernel.cpu):
            return True
        kernel.run_steps(1, fast=False)
    return False


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        for name, campaign in sorted(CAMPAIGNS.items()):
            baseline = _baseline(campaign)
            a = campaign.build_plan(SEED, baseline["steps"])
            b = campaign.build_plan(SEED, baseline["steps"])
            assert a == b, name
            assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        campaign = CAMPAIGNS["bitflips"]
        baseline = _baseline(campaign)
        plans = {
            str(campaign.build_plan(seed, baseline["steps"]).to_dict())
            for seed in range(5)
        }
        assert len(plans) == 5

    def test_plan_is_sorted_by_step(self):
        campaign = CAMPAIGNS["interrupt-storm"]
        baseline = _baseline(campaign)
        plan = campaign.build_plan(SEED, baseline["steps"])
        steps = [inj.step for inj in plan.injections]
        assert steps == sorted(steps)

    def test_prefix_truncates(self):
        plan = make_plan(1, "x", [injection(10, "spurious-int"), injection(20, "refault")])
        assert len(plan.prefix(1).injections) == 1
        assert plan.prefix(1).injections[0].step == 10

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            injection(10, "meteor-strike")


class TestShippedCampaigns:
    """The acceptance bar: zero violations, expected outcomes, both engines."""

    @pytest.mark.parametrize("name", sorted(CAMPAIGNS))
    def test_zero_violations_on_both_engines(self, name):
        summary = run_campaign(name, seed=SEED)
        assert summary["violations"] == []
        assert set(summary["engines"]) == {"fast", "precise"}
        expected = {"panic"} if CAMPAIGNS[name].expects == "panic" else {"halted"}
        for engine in summary["engines"].values():
            assert engine["outcome"] in expected

    def test_summary_is_reproducible(self):
        a = run_campaign("interrupt-storm", seed=SEED)
        b = run_campaign("interrupt-storm", seed=SEED)
        assert a == b
        assert a["digest"] == b["digest"]

    def test_engines_agree_per_injection(self):
        summary = run_campaign("bitflips", seed=SEED)
        fast, precise = summary["engines"]["fast"], summary["engines"]["precise"]
        assert fast["records"] == precise["records"]
        assert fast["final"] == precise["final"]
        assert fast["outputs"] == precise["outputs"]

    def test_nested_faults_ends_in_wellformed_panic(self):
        summary = run_campaign("nested-faults", seed=SEED)
        for engine in summary["engines"].values():
            assert engine["outcome"] == "panic"
            assert check_panic_record(engine["final"]["panic"]) == []
            assert len(engine["final"]["panic"]["xra"]) == 3


class TestDoubleFaultPanic:
    def test_fault_inside_handler_panics(self):
        kernel = _kernel_with([_counting_source(100, 10)])
        assert _step_until(kernel, lambda c: c.in_exception)
        with pytest.raises(KernelPanic) as info:
            kernel.cpu._take_fault(OverflowTrap("injected"))
        record = info.value.record()
        assert record["panic"] == "double fault"
        assert check_panic_record(record) == []
        assert len(record["xra"]) == 3

    def test_fault_outside_handler_recovers(self):
        kernel = _kernel_with([_counting_source(100, 10)])
        assert _step_until(kernel, lambda c: not c.in_exception)
        kernel.cpu._take_fault(OverflowTrap("injected"))  # must not raise
        assert kernel.cpu.in_exception
        assert kernel.cpu.pc == 0

    def test_tampered_panic_record_is_flagged(self):
        kernel = _kernel_with([_counting_source(100, 10)])
        assert _step_until(kernel, lambda c: c.in_exception)
        with pytest.raises(KernelPanic) as info:
            kernel.cpu._take_fault(OverflowTrap("injected"))
        record = info.value.record()
        record["xra"] = record["xra"][:2]
        del record["fault_cause"]
        assert check_panic_record(record)


class TestInvariantChecker:
    def test_clean_kernel_run_has_no_violations(self):
        kernel = _kernel_with([_counting_source(100, 20), _counting_source(200, 20)])
        checker = RecoveryContractChecker()
        checker.install(kernel.cpu)
        kernel.run_steps(60_000)
        assert kernel.halted
        assert checker.observed > 0
        assert checker.violations == []

    def test_checker_is_engine_invariant(self):
        counts = {}
        for fast in (True, False):
            kernel = _kernel_with([_counting_source(100, 20)])
            checker = RecoveryContractChecker()
            checker.install(kernel.cpu)
            kernel.run_steps(60_000, fast=fast)
            assert kernel.halted
            assert checker.violations == []
            counts[fast] = checker.observed
        assert counts[True] == counts[False]


class TestShrinker:
    def _plan(self, count):
        return make_plan(
            3, "synthetic", [injection(10 * (i + 1), "spurious-int") for i in range(count)]
        )

    def test_monotone_failure_shrinks_to_boundary(self):
        plan = self._plan(8)
        calls = []

        def fails(candidate):
            calls.append(len(candidate.injections))
            return len(candidate.injections) >= 5

        shrunk = shortest_failing_prefix(plan, fails)
        assert len(shrunk.injections) == 5
        assert len(calls) < 12  # binary search, not linear scan

    def test_nothing_fails_returns_full_plan(self):
        plan = self._plan(4)
        assert shortest_failing_prefix(plan, lambda p: False) == plan

    def test_nonmonotone_failure_still_minimal(self):
        plan = self._plan(8)
        shrunk = shortest_failing_prefix(plan, lambda p: len(p.injections) == 4)
        assert len(shrunk.injections) == 4

    def test_shrinks_panic_plan_to_the_kernel_refault(self):
        campaign = CAMPAIGNS["nested-faults"]
        baseline = _baseline(campaign)
        plan = campaign.build_plan(SEED, baseline["steps"])

        def fails(candidate):
            try:
                run = run_plan(
                    campaign.make_target(), candidate, fast=True, max_steps=campaign.max_steps
                )
            except Exception:
                return False
            return run.outcome == "panic"

        shrunk = shortest_failing_prefix(plan, fails)
        assert shrunk.injections[-1].kind == "kernel-refault"
        assert len(shrunk.injections) <= len(plan.injections)


class TestChaosCli:
    def test_run_is_byte_reproducible(self, tmp_path, capsys):
        a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        argv = ["run", "--seed", str(SEED), "--campaign", "nested-faults",
                "--campaign", "device-stall"]
        assert chaos_main(argv + ["--results", a]) == 0
        assert chaos_main(argv + ["--results", b]) == 0
        out = capsys.readouterr().out
        assert filecmp.cmp(a, b, shallow=False)
        assert out.count("aggregate digest:") == 2

    def test_list_names_every_campaign(self, capsys):
        assert chaos_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in CAMPAIGNS:
            assert name in out

    def test_unknown_campaign_is_an_argparse_error(self):
        with pytest.raises(SystemExit):
            chaos_main(["run", "--seed", "1", "--campaign", "nope"])


class TestFarmIntegration:
    def test_campaign_runs_as_farm_job(self):
        (job,) = chaos_jobs(["device-stall"], seed=SEED)
        record = execute_job(job.to_dict())
        assert record["status"] == "ok"
        chaos = record["extra"]["chaos"]
        assert chaos["campaign"] == "device-stall"
        assert chaos["seed"] == SEED
        assert chaos["violations"] == []
        assert chaos["digest"] == run_campaign("device-stall", seed=SEED)["digest"]

    def test_campaign_jobs_through_scheduler(self):
        jobs = chaos_jobs(["nested-faults"], seed=SEED)
        (record,) = Scheduler(jobs=1, backoff_base_s=0.01).run(list(jobs))
        assert record["status"] == "ok"
        assert record["extra"]["chaos"]["outcome"] == "panic"
        assert record["extra"]["chaos"]["violations"] == []

    def test_dead_worker_leaves_replayable_record(self):
        (job,) = chaos_jobs(["paging-chaos"], seed=11)
        record = crash_record(job.to_dict(), attempt=2, detail="worker died")
        assert record["status"] == "crash"
        assert record["error"]["attempt"] == 2
        assert record["extra"]["chaos_seed"] == 11
        assert record["extra"]["campaign"] == "paging-chaos"
        assert "mips-chaos run --seed 11 --campaign paging-chaos" in record["error"]["message"]

    def test_seed_is_part_of_the_job_key(self):
        (a,) = chaos_jobs(["bitflips"], seed=1)
        (b,) = chaos_jobs(["bitflips"], seed=2)
        assert a.key != b.key
