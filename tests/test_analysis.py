"""Analyses behind the tables: units plus corpus-level sanity."""

import pytest

from repro.analysis import (
    AddressingCosts,
    EvalStrategy,
    OpCounts,
    TABLE5,
    analyze_cc_program,
    corpus_distribution,
    corpus_stats,
    count_operators,
    distribution,
    expression_cost,
    from_paper,
    improvements,
    measure_program,
    overhead_sweep,
    program_stats,
    table6,
)
from repro.isa.immediates import ConstantClass
from repro.lang import analyze
from repro.reorg import ALL_LEVELS, OptLevel


class TestConstantDistribution:
    def test_bucketing(self):
        dist = distribution([0, 0, 1, 2, 5, 100, 1000])
        assert dist.counts[ConstantClass.ZERO] == 2
        assert dist.counts[ConstantClass.LARGE] == 1
        assert dist.total == 7

    def test_percentages_sum_to_100(self):
        dist = distribution(range(-50, 500))
        assert sum(dist.percentages.values()) == pytest.approx(100.0)

    def test_coverage_monotone(self):
        dist = distribution(range(300))
        assert dist.imm4_coverage <= dist.movi_coverage <= 100.0

    def test_empty_distribution(self):
        dist = distribution([])
        assert dist.total == 0 and dist.imm4_coverage == 0.0

    def test_corpus_shape_matches_paper(self):
        """The paper's headline: ~70% fit 4 bits, ~95% fit 8."""
        dist = corpus_distribution()
        assert dist.imm4_coverage > 60.0
        assert dist.movi_coverage > 90.0
        assert dist.percent(ConstantClass.LARGE) < 10.0


class TestCcUsage:
    def test_zero_test_after_operation_is_saved(self):
        from repro.ccmachine.isa import Alu, CcAluOp, CcImm, CcReg, Cmp, Halt
        from repro.ccmachine.machine import resolve

        program = resolve(
            [
                (None, Alu(CcAluOp.SUB, CcImm(1), CcReg(1))),
                (None, Cmp(CcReg(1), CcImm(0))),
                (None, Halt()),
            ]
        )
        usage = analyze_cc_program(program)
        assert usage.compares == 1
        assert usage.saved_by_operators == 1

    def test_zero_test_after_move_saved_only_with_moves(self):
        from repro.ccmachine.isa import AbsAddr, CcImm, CcMem, CcReg, Cmp, Halt, Move
        from repro.ccmachine.machine import resolve

        program = resolve(
            [
                (None, Move(CcMem(AbsAddr(5)), CcReg(1))),
                (None, Cmp(CcReg(1), CcImm(0))),
                (None, Halt()),
            ]
        )
        usage = analyze_cc_program(program)
        assert usage.saved_by_moves == 1
        assert usage.saved_by_operators == 0

    def test_branch_target_blocks_saving(self):
        from repro.ccmachine.isa import Alu, CcAluOp, CcImm, CcReg, Cmp, Halt
        from repro.ccmachine.machine import resolve

        program = resolve(
            [
                (None, Alu(CcAluOp.SUB, CcImm(1), CcReg(1))),
                ("join", Cmp(CcReg(1), CcImm(0))),  # a label: CC unknown
                (None, Halt()),
            ]
        )
        assert analyze_cc_program(program).saved_by_operators == 0

    def test_nonzero_comparison_never_saved(self):
        from repro.ccmachine.isa import Alu, CcAluOp, CcImm, CcReg, Cmp, Halt
        from repro.ccmachine.machine import resolve

        program = resolve(
            [
                (None, Alu(CcAluOp.SUB, CcImm(1), CcReg(1))),
                (None, Cmp(CcReg(1), CcImm(5))),
                (None, Halt()),
            ]
        )
        assert analyze_cc_program(program).saved_by_operators == 0


class TestBoolExpr:
    def test_count_operators(self):
        checked = analyze(
            "program p; var a, b, c: integer; f: boolean;"
            "begin f := (a = b) or (b < c) end."
        )
        assign = checked.ast.body.body[0]
        assert count_operators(assign.value) == 3  # two relations + or

    def test_jump_vs_store_classification(self):
        checked = analyze(
            """
            program p;
            var a, b: integer; f: boolean;
            begin
              f := a = b;
              if a < b then a := 1;
              while a > b do a := a - 1
            end.
            """
        )
        stats = program_stats(checked)
        assert stats.store_expressions == 1
        assert stats.jump_expressions == 2

    def test_bare_boolean_variable_not_counted(self):
        checked = analyze(
            "program p; var f: boolean; begin f := true; if f then f := false end."
        )
        stats = program_stats(checked)
        assert stats.expressions == 0  # no operators anywhere

    def test_corpus_has_both_contexts(self):
        stats = corpus_stats()
        assert stats.jump_expressions > 0
        assert stats.store_expressions > 0
        assert 1.0 <= stats.operators_per_expression <= 3.0


class TestBoolCost:
    def test_table5_matches_paper_exactly(self):
        assert TABLE5[EvalStrategy.SET_CONDITIONALLY][0].as_tuple() == (2, 1, 0)
        assert TABLE5[EvalStrategy.CC_CONDITIONAL_SET][0].as_tuple() == (2, 3, 0)
        assert TABLE5[EvalStrategy.CC_BRANCH_FULL][0].as_tuple() == (2, 2, 2)
        assert TABLE5[EvalStrategy.CC_BRANCH_EARLY_OUT][1].as_tuple() == (2, 0, 1.5)

    def test_cost_weights(self):
        assert OpCounts(1, 1, 1).cost() == 2 + 1 + 4

    def test_setcond_store_matches_paper(self):
        # with the paper's inputs this cell reproduces exactly: 9.3
        assert expression_cost(
            EvalStrategy.SET_CONDITIONALLY, "store", 1.66
        ) == pytest.approx(9.3, abs=0.01)

    def test_strategy_ordering(self):
        """setcond < conditional set < branch evaluation, at any ops/expr."""
        for ops in (1.0, 1.66, 2.5):
            rows = table6(ops)
            assert (
                rows[EvalStrategy.SET_CONDITIONALLY].total_full
                < rows[EvalStrategy.CC_CONDITIONAL_SET].total_full
                < rows[EvalStrategy.CC_BRANCH_FULL].total_full
            )

    def test_early_out_only_helps_branch_evaluation(self):
        rows = table6(1.66)
        setcond = rows[EvalStrategy.SET_CONDITIONALLY]
        branch = rows[EvalStrategy.CC_BRANCH_FULL]
        assert setcond.total_full == setcond.total_early
        assert branch.total_early < branch.total_full

    def test_improvements_in_paper_ballpark(self):
        result = improvements(1.66, 0.809)
        assert 25 <= result[("conditional set / CC", "full")] <= 45
        assert 45 <= result[("set conditionally", "full")] <= 60
        assert 5 <= result[("conditional set / CC", "early-out")] <= 20
        assert 25 <= result[("set conditionally", "early-out")] <= 45


class TestByteCost:
    def test_paper_frequency_penalties_positive(self):
        for allocation in ("word-allocated", "byte-allocated"):
            low, high = from_paper(allocation).penalty_percent()
            assert high > 0, "byte addressing must lose"

    def test_word_allocated_penalty_near_paper(self):
        low, high = from_paper("word-allocated").penalty_percent()
        assert 7 <= low <= 14 and 9 <= high <= 16

    def test_more_overhead_more_penalty(self):
        from repro.analysis import PAPER_FREQUENCIES

        sweep = overhead_sweep(PAPER_FREQUENCIES["word-allocated"])
        highs = [sweep[o][1] for o in sorted(sweep)]
        assert highs == sorted(highs)

    def test_zero_frequencies_no_crash(self):
        costs = AddressingCosts({})
        assert costs.penalty_percent() == (0.0, 0.0)

    def test_component_rows_cover_table10(self):
        rows = from_paper("word-allocated").component_rows()
        assert len(rows) == 8


class TestStaticCounts:
    def test_ladder_monotone_for_fib(self):
        from repro.workloads import FIB_RECURSIVE

        ladder = measure_program("fib", FIB_RECURSIVE)
        assert ladder.is_monotone()
        assert ladder.total_improvement_percent > 5.0

    def test_improvement_at_each_level(self):
        from repro.workloads import FIB_RECURSIVE

        ladder = measure_program("fib", FIB_RECURSIVE)
        values = [ladder.improvement_at(level) for level in ALL_LEVELS]
        assert values[0] == 0.0
        assert values == sorted(values)
