"""Profiles and reports: determinism, events, labels, renderings."""

import pytest

from repro.asm import assemble
from repro.compiler import compile_source
from repro.perf import (
    Profiler,
    build_profile,
    render_collapsed,
    render_json,
    render_text,
)
from repro.perf.report import label_for
from repro.sim import Machine
from repro.workloads import CORPUS

ENGINES = (True, False)
ENGINE_IDS = ("fast", "precise")


def _profile_workload(name, fast, top=20):
    compiled = compile_source(CORPUS[name])
    machine = Machine(compiled.program)
    Profiler().attach(machine.cpu)
    machine.run(30_000_000, fast=fast)
    return build_profile(machine.cpu, compiled.program, top=top, name=name)


class TestByteIdentity:
    @pytest.mark.parametrize("name", ["sort", "calc", "fib_recursive"])
    def test_identical_across_engines(self, name):
        rendered = [
            (
                render_json(p),
                render_text(p),
                render_collapsed(p),
            )
            for p in (_profile_workload(name, fast) for fast in ENGINES)
        ]
        assert rendered[0] == rendered[1]

    def test_identical_across_repeated_runs(self):
        assert render_json(_profile_workload("sort", True)) == render_json(
            _profile_workload("sort", True)
        )


class TestProfileContents:
    def test_top_limits_hot_list_only(self):
        full = _profile_workload("sort", True, top=None)
        limited = _profile_workload("sort", True, top=5)
        assert len(limited["hot"]) == 5
        assert limited["hot"] == full["hot"][:5]
        assert limited["total_cycles"] == full["total_cycles"]

    def test_hot_list_ordering_is_total(self):
        profile = _profile_workload("sort", True, top=None)
        keys = [(-entry["cycles"], entry["pc"]) for entry in profile["hot"]]
        assert keys == sorted(keys)

    def test_trap_events_recorded_engine_neutrally(self):
        profiles = [_profile_workload("sort", fast) for fast in ENGINES]
        assert profiles[0]["events"] == profiles[1]["events"]
        assert any(e["kind"] == "trap" for e in profiles[0]["events"])
        # the final halt is the last event, timestamped in words
        last = profiles[0]["events"][-1]
        assert last["kind"] == "trap" and last["code"] == 0

    def test_counters_exclude_engine_group(self):
        profile = _profile_workload("sort", True)
        assert "engine" not in profile["counters"]

    def test_requires_attached_profiler(self):
        machine = Machine(assemble("start: trap #0"))
        machine.run(10)
        with pytest.raises(ValueError):
            build_profile(machine.cpu, None)


class TestEventRing:
    def test_ring_evicts_oldest_and_counts_drops(self):
        profiler = Profiler(capacity=4)
        for i in range(10):
            profiler.record_event("trap", i, i, 1)
        events = profiler.events
        assert len(events) == 4
        assert [e["seq"] for e in events] == [6, 7, 8, 9]
        assert profiler.events_dropped == 6


class TestLabels:
    TABLE = [(0, "start"), (10, "inner"), (40, "done")]

    def test_exact_symbol(self):
        assert label_for(10, self.TABLE) == "inner"

    def test_offset_from_nearest_preceding(self):
        assert label_for(13, self.TABLE) == "inner+3"
        assert label_for(9, self.TABLE) == "start+9"

    def test_before_first_symbol_falls_back_to_hex(self):
        assert label_for(5, [(10, "inner")]) == "0x5"

    def test_collapsed_lines_carry_labels_and_cycles(self):
        profile = _profile_workload("sort", True, top=3)
        lines = render_collapsed(profile).splitlines()
        assert len(lines) == 3
        for line, entry in zip(lines, profile["hot"]):
            assert line == f"{entry['label']};0x{entry['pc']:x} {entry['cycles']}"
