"""Instruction pieces: operand sets, flags, validation."""

import pytest

from repro.isa.operations import AluOp, Comparison
from repro.isa.pieces import (
    Absolute,
    Alu,
    BaseIndex,
    BaseShifted,
    CompareBranch,
    Displacement,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    MovImm,
    Noop,
    ReadSpecial,
    Rfs,
    SetCond,
    Store,
    Trap,
    WriteSpecial,
)
from repro.isa.registers import RA, Reg, SpecialReg


class TestOperandValidation:
    def test_imm_range(self):
        Imm(0)
        Imm(15)
        with pytest.raises(ValueError):
            Imm(16)
        with pytest.raises(ValueError):
            Imm(-1)

    def test_movi_range(self):
        MovImm(255, Reg(1))
        with pytest.raises(ValueError):
            MovImm(256, Reg(1))

    def test_loadimm_range(self):
        LoadImm(LoadImm.LIMIT - 1, Reg(1))
        LoadImm(-LoadImm.LIMIT, Reg(1))
        with pytest.raises(ValueError):
            LoadImm(LoadImm.LIMIT, Reg(1))

    def test_trap_code_range(self):
        Trap(4095)
        with pytest.raises(ValueError):
            Trap(4096)

    def test_base_shift_range(self):
        BaseShifted(Reg(0), 1)
        BaseShifted(Reg(0), 4)
        with pytest.raises(ValueError):
            BaseShifted(Reg(0), 0)
        with pytest.raises(ValueError):
            BaseShifted(Reg(0), 5)

    def test_displacement_range(self):
        Displacement(Reg(0), Displacement.LIMIT - 1)
        with pytest.raises(ValueError):
            Displacement(Reg(0), Displacement.LIMIT)


class TestReadsWrites:
    def test_alu_reads_both_registers(self):
        piece = Alu(AluOp.ADD, Reg(1), Reg(2), Reg(3))
        assert piece.reads() == {Reg(1), Reg(2)}
        assert piece.writes() == {Reg(3)}

    def test_alu_immediates_read_nothing(self):
        piece = Alu(AluOp.ADD, Imm(1), Reg(2), Reg(3))
        assert piece.reads() == {Reg(2)}

    def test_mov_ignores_s2(self):
        piece = Alu(AluOp.MOV, Reg(1), Reg(9), Reg(3))
        assert piece.reads() == {Reg(1)}

    def test_insert_byte_reads_destination_and_lo(self):
        piece = Alu(AluOp.IC, Reg(1), Imm(0), Reg(3))
        assert Reg(3) in piece.reads()  # partial update: old value is input
        assert SpecialReg.LO in piece.reads_special()

    def test_load_reads_address_registers(self):
        assert Load(BaseIndex(Reg(1), Reg(2)), Reg(3)).reads() == {Reg(1), Reg(2)}
        assert Load(Absolute(100), Reg(3)).reads() == frozenset()

    def test_store_reads_source_and_address(self):
        piece = Store(Displacement(Reg(1), 4), Reg(2))
        assert piece.reads() == {Reg(1), Reg(2)}
        assert piece.writes() == frozenset()

    def test_jump_link_writes_ra(self):
        assert Jump("f", link=True).writes() == {RA}
        assert Jump("f").writes() == frozenset()

    def test_compare_branch_reads_operands(self):
        piece = CompareBranch(Comparison.LT, Reg(1), Imm(5), "L")
        assert piece.reads() == {Reg(1)}

    def test_setcond_is_not_flow(self):
        assert not SetCond(Comparison.EQ, Reg(1), Reg(2), Reg(3)).is_flow


class TestFlags:
    def test_delay_slots(self):
        assert CompareBranch(Comparison.EQ, Reg(0), Reg(1), "L").delay_slots == 1
        assert Jump("L").delay_slots == 1
        assert JumpIndirect(Reg(1)).delay_slots == 2
        assert Trap(1).delay_slots == 0

    def test_flow_flags(self):
        assert Jump("L").is_flow
        assert Rfs().is_flow
        assert not Load(Absolute(0), Reg(1)).is_flow

    def test_memory_flags(self):
        assert Load(Absolute(0), Reg(1)).is_load
        assert Store(Absolute(0), Reg(1)).is_store
        assert Load(Absolute(0), Reg(1)).is_memory
        assert not Noop().is_memory

    def test_privilege(self):
        assert Rfs().privileged
        assert ReadSpecial(SpecialReg.SURPRISE, Reg(1)).privileged
        assert WriteSpecial(SpecialReg.SEG_PID, Reg(1)).privileged
        # the byte selector is user-accessible (store-byte sequences)
        assert not WriteSpecial(SpecialReg.LO, Reg(1)).privileged
        assert not ReadSpecial(SpecialReg.LO, Reg(1)).privileged


class TestNotes:
    def test_note_does_not_affect_equality(self):
        a = Load(Absolute(5), Reg(1), note="load:32:word")
        b = Load(Absolute(5), Reg(1))
        assert a == b

    def test_note_preserved(self):
        assert Store(Absolute(5), Reg(1), note="store:8:char").note == "store:8:char"
