"""ALU operations and the sixteen comparisons."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.bits import s32, u32
from repro.isa.operations import (
    NEGATED_COMPARISON,
    SWAPPED_COMPARISON,
    AluOp,
    Comparison,
    alu_evaluate,
    alu_insert_byte,
    alu_overflows,
    compare,
)

words = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestAluBasics:
    def test_add_wraps(self):
        assert alu_evaluate(AluOp.ADD, 0xFFFFFFFF, 1) == 0

    def test_sub_order(self):
        assert alu_evaluate(AluOp.SUB, 10, 3) == 7

    def test_rsub_reverses(self):
        assert alu_evaluate(AluOp.RSUB, 3, 10) == 7

    def test_rsub_expresses_negation(self):
        # rsub #k, 0 computes -k: the paper's negative-constant idiom
        assert s32(alu_evaluate(AluOp.RSUB, 5, 0)) == -5

    def test_logical_ops(self):
        assert alu_evaluate(AluOp.AND, 0b1100, 0b1010) == 0b1000
        assert alu_evaluate(AluOp.OR, 0b1100, 0b1010) == 0b1110
        assert alu_evaluate(AluOp.XOR, 0b1100, 0b1010) == 0b0110

    def test_shifts(self):
        assert alu_evaluate(AluOp.SLL, 1, 4) == 16
        assert alu_evaluate(AluOp.SRL, 0x80000000, 31) == 1
        assert alu_evaluate(AluOp.SRA, 0x80000000, 31) == 0xFFFFFFFF

    def test_shift_amount_mod_32(self):
        assert alu_evaluate(AluOp.SLL, 1, 32) == 1

    def test_mov_ignores_s2(self):
        assert alu_evaluate(AluOp.MOV, 42, 999) == 42

    def test_not(self):
        assert alu_evaluate(AluOp.NOT, 0, 0) == 0xFFFFFFFF

    def test_ic_requires_special_path(self):
        with pytest.raises(ValueError):
            alu_evaluate(AluOp.IC, 0, 0)

    @given(words, words)
    def test_add_matches_modular(self, a, b):
        assert alu_evaluate(AluOp.ADD, a, b) == (a + b) % (1 << 32)


class TestByteOps:
    def test_extract_each_byte(self):
        word = 0x44332211
        for selector, expected in enumerate((0x11, 0x22, 0x33, 0x44)):
            assert alu_evaluate(AluOp.XC, selector, word) == expected

    def test_extract_uses_low_two_bits(self):
        assert alu_evaluate(AluOp.XC, 4, 0x44332211) == 0x11

    def test_insert_each_byte(self):
        for selector in range(4):
            result = alu_insert_byte(selector, 0xAB, 0)
            assert result == 0xAB << (8 * selector)

    def test_insert_preserves_other_bytes(self):
        result = alu_insert_byte(1, 0xFF, 0x44332211)
        assert result == 0x4433FF11

    def test_insert_takes_low_byte_of_source(self):
        assert alu_insert_byte(0, 0x1234, 0) == 0x34

    @given(st.integers(min_value=0, max_value=3), words, words)
    def test_insert_then_extract(self, selector, source, word):
        inserted = alu_insert_byte(selector, source, word)
        assert alu_evaluate(AluOp.XC, selector, inserted) == source & 0xFF


class TestOverflowDetection:
    def test_add_overflow(self):
        assert alu_overflows(AluOp.ADD, 0x7FFFFFFF, 1)

    def test_sub_overflow(self):
        assert alu_overflows(AluOp.SUB, 0x80000000, 1)

    def test_rsub_overflow_checks_reversed(self):
        assert alu_overflows(AluOp.RSUB, 1, 0x80000000)

    def test_logical_never_overflow(self):
        assert not alu_overflows(AluOp.AND, 0xFFFFFFFF, 0xFFFFFFFF)
        assert not alu_overflows(AluOp.SLL, 0xFFFFFFFF, 31)


class TestComparisons:
    def test_exactly_sixteen(self):
        assert len(Comparison) == 16

    def test_signed_vs_unsigned(self):
        minus_one = u32(-1)
        assert compare(Comparison.LT, minus_one, 1)     # signed: -1 < 1
        assert not compare(Comparison.LO, minus_one, 1)  # unsigned: big
        assert compare(Comparison.HI, minus_one, 1)

    def test_equality(self):
        assert compare(Comparison.EQ, 5, 5)
        assert compare(Comparison.NE, 5, 6)

    def test_constant_outcomes(self):
        assert compare(Comparison.T, 0, 0)
        assert not compare(Comparison.F, 1, 1)

    def test_bit_tests(self):
        assert compare(Comparison.BC, 0b0101, 0b1010)
        assert compare(Comparison.BS, 0b0101, 0b0100)
        assert compare(Comparison.NBC, 0b0101, 0b1111)
        assert compare(Comparison.NBS, 0b0101, 0b0001)

    @given(words, words, st.sampled_from(list(Comparison)))
    def test_negation_table(self, a, b, cond):
        assert compare(NEGATED_COMPARISON[cond], a, b) == (not compare(cond, a, b))

    @given(words, words, st.sampled_from(sorted(SWAPPED_COMPARISON, key=lambda c: c.value)))
    def test_swap_table(self, a, b, cond):
        assert compare(SWAPPED_COMPARISON[cond], b, a) == compare(cond, a, b)

    @given(words, words)
    def test_signed_trichotomy(self, a, b):
        outcomes = [
            compare(Comparison.LT, a, b),
            compare(Comparison.EQ, a, b),
            compare(Comparison.GT, a, b),
        ]
        assert sum(outcomes) == 1
