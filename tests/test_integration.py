"""Cross-cutting integration: the full toolchain and the full machine."""

import pytest

from repro.asm import assemble
from repro.compiler import CompileOptions, LayoutStrategy, compile_source
from repro.isa.encoding import decode
from repro.reorg import ALL_LEVELS
from repro.sim import HazardMode, Machine
from repro.system import Kernel
from repro.workloads import CORPUS, EXPECTED_OUTPUT


class TestToolchainRoundTrips:
    def test_compiled_program_decodes_from_memory(self):
        """Every compiled instruction word re-decodes from its bits."""
        compiled = compile_source(CORPUS["sieve"])
        for addr, word in compiled.program.instructions.items():
            assert decode(compiled.program.memory[addr], addr) == word

    def test_compiled_program_runs_from_raw_bits(self):
        """Execution via decode (no cached words) gives the same output."""
        compiled = compile_source(CORPUS["strings"])
        machine = Machine(compiled.program)
        machine.cpu._decode_cache.clear()  # force real decoding
        machine.run(10_000_000)
        assert machine.output == EXPECTED_OUTPUT["strings"]

    def test_disassembly_reassembles_consistently(self):
        source = """
        start:  movi #42, r1
                trap #1
                trap #0
        """
        program = assemble(source)
        listing = program.disassemble()
        assert "movi #42,r1" in listing


class TestOptimizationLevelsEndToEnd:
    @pytest.mark.parametrize("name", ["sieve", "sort", "fib_recursive"])
    def test_all_levels_agree_on_corpus(self, name, compile_cache):
        outputs = []
        for level in ALL_LEVELS:
            compiled = compile_cache(CORPUS[name], opt_level=level)
            machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
            machine.run(60_000_000)
            outputs.append(machine.output)
        assert all(o == EXPECTED_OUTPUT[name] for o in outputs)

    def test_optimized_code_is_faster(self, compile_cache):
        from repro.reorg import OptLevel

        cycles = {}
        for level in (OptLevel.NONE, OptLevel.BRANCH_DELAY):
            compiled = compile_cache(CORPUS["sort"], opt_level=level)
            machine = Machine(compiled.program)
            stats = machine.run(60_000_000)
            cycles[level] = stats.cycles
        assert cycles[OptLevel.BRANCH_DELAY] < cycles[OptLevel.NONE]


class TestKernelRunsTheCorpus:
    def test_three_processes_with_preemption(self):
        kernel = Kernel(quantum=3000, hazard_mode=HazardMode.CHECKED)
        names = ["fib_iterative", "strings", "sieve"]
        for name in names:
            kernel.add_process(compile_source(CORPUS[name]).program)
        kernel.run(60_000_000)
        for pid, name in enumerate(names):
            assert kernel.output(pid) == EXPECTED_OUTPUT[name], name
            assert kernel.process_state(pid) == 2

    def test_same_program_bare_metal_and_under_kernel(self):
        compiled = compile_source(CORPUS["sort"])
        bare = Machine(compiled.program)
        bare.run(30_000_000)
        kernel = Kernel(quantum=2500)
        kernel.add_process(compiled.program)
        kernel.run(60_000_000)
        assert bare.output == kernel.output(0) == EXPECTED_OUTPUT["sort"]

    def test_kernel_under_checked_mode(self):
        """The kernel's own ROM satisfies every pipeline constraint."""
        kernel = Kernel(quantum=1000, hazard_mode=HazardMode.CHECKED)
        kernel.add_process(compile_source(CORPUS["scanner"]).program)
        kernel.add_process(compile_source(CORPUS["logic"]).program)
        kernel.run(60_000_000)
        assert kernel.output(0) == EXPECTED_OUTPUT["scanner"]
        assert kernel.output(1) == EXPECTED_OUTPUT["logic"]


class TestCli:
    def test_mipsc_compiles_and_runs(self, tmp_path, capsys):
        from repro.cli import compile_main

        source_file = tmp_path / "p.pas"
        source_file.write_text("program p; begin writeln(6 * 7) end.")
        assert compile_main([str(source_file)]) == 0
        assert "42" in capsys.readouterr().out

    def test_sim_main(self, tmp_path, capsys):
        from repro.cli import sim_main

        source_file = tmp_path / "p.s"
        source_file.write_text("start: movi #99, r1\ntrap #1\ntrap #0")
        assert sim_main([str(source_file)]) == 0
        assert "99" in capsys.readouterr().out

    def test_asm_main(self, tmp_path, capsys):
        from repro.cli import asm_main

        source_file = tmp_path / "p.s"
        source_file.write_text("start: nop\ntrap #0")
        assert asm_main([str(source_file)]) == 0
        assert "nop" in capsys.readouterr().out

    def test_reorg_main(self, tmp_path, capsys):
        from repro.cli import reorg_main

        source_file = tmp_path / "p.s"
        source_file.write_text("start: ld 0(r1), r2\nadd r2, r3, r4\ntrap #0")
        assert reorg_main([str(source_file)]) == 0
        out = capsys.readouterr().out
        assert "none:" in out and "branch-delay:" in out

    def test_experiments_main_rejects_unknown(self):
        from repro.cli import experiments_main

        with pytest.raises(SystemExit):
            experiments_main(["no_such_table"])
