"""The simulation farm: determinism, fault tolerance, degradation.

The invariants under test are the subsystem's contract:

- serial and sharded execution produce identical records (minus
  wall-clock noise), so ``--jobs N`` never changes results;
- injected worker crashes and timeouts are retried and recorded
  without losing or duplicating any job's result;
- guest failures (page faults, step-budget exhaustion) become
  structured failure records and do not poison the worker;
- the JSON-lines store aggregates deterministically regardless of
  completion order.
"""

import json
import random

import pytest

from repro.farm import (
    Job,
    ResultStore,
    Scheduler,
    aggregate,
    experiment_jobs,
    run_jobs,
    workload_jobs,
)
from repro.farm.store import stable_view
from repro.workloads import EXPECTED_OUTPUT

#: cheap corpus members (tens of thousands of cycles, not millions)
FAST_WORKLOADS = ("scanner", "logic")

#: an assembly program that dereferences the dead middle of the
#: address space; with mapping enabled this is a page fault
PAGE_FAULT_ASM = """
start:  lim 524288, r1      ; 2^19
        sll r1, #4, r1      ; 0x800000 -- between the two valid regions
        ld 0(r1), r2
        nop
        trap #0
        nop
"""

#: a program that never halts (the --max-steps guard must catch it)
RUNAWAY_ASM = """
start:  jmp start
        nop
"""


def fast_scheduler(**kwargs):
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return Scheduler(**kwargs)


class TestJobSpec:
    def test_key_is_stable_and_content_addressed(self):
        a = Job(kind="workload", name="scanner")
        b = Job(kind="workload", name="scanner")
        c = Job(kind="workload", name="scanner", max_steps=999)
        assert a.key == b.key
        assert a.key != c.key

    def test_key_ignores_wall_clock_knobs(self):
        a = Job(kind="workload", name="scanner", timeout_s=1.0, max_attempts=7)
        b = Job(kind="workload", name="scanner")
        assert a.key == b.key

    def test_wire_roundtrip_preserves_key(self):
        job = Job(
            kind="source",
            name="inline",
            spec={"source": "program p; begin end.", "register_allocation": False},
            hazard_mode="checked",
            inputs=(1, 2, 3),
        )
        assert Job.from_dict(job.to_dict()).key == job.key

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Job(kind="nonsense", name="x")


class TestSerialExecution:
    def test_workload_record_matches_oracle(self):
        (record,) = fast_scheduler(jobs=1).run(workload_jobs(["scanner"]))
        assert record["status"] == "ok"
        assert record["output"] == EXPECTED_OUTPUT["scanner"]
        assert record["cycles"] > 0
        assert record["stats"]["words"] == record["words"]
        assert record["fingerprint"]
        assert record["attempts"] == 1

    def test_runaway_job_times_out_with_structured_record(self):
        job = Job(kind="asm", name="runaway", spec={"source": RUNAWAY_ASM}, max_steps=5_000)
        (record,) = fast_scheduler(jobs=1).run([job])
        assert record["status"] == "timeout"
        assert record["error"]["type"] == "TimeoutError"
        assert "did not halt" in record["error"]["message"]

    def test_page_fault_produces_structured_failure(self):
        job = Job(
            kind="asm",
            name="pagefault",
            spec={"source": PAGE_FAULT_ASM, "mapped": True},
            max_steps=1_000,
        )
        (record,) = fast_scheduler(jobs=1).run([job])
        assert record["status"] == "fault"
        assert record["error"]["type"] == "PageFault"
        assert record["error"]["cause"] == "PAGE_FAULT"
        assert record["error"]["address"] == 0x800000

    def test_compile_error_becomes_error_record(self):
        job = Job(kind="source", name="broken", spec={"source": "this is not pascal"})
        (record,) = fast_scheduler(jobs=1).run([job])
        assert record["status"] == "error"
        assert record["error"]["type"]

    def test_env_forces_serial_degradation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FARM_SERIAL", "1")
        scheduler = Scheduler(jobs=4)
        assert scheduler.serial
        report = scheduler.run_report(workload_jobs(["scanner"]))
        assert report.degraded_serial
        assert report.records[0]["status"] == "ok"


class TestShardedExecution:
    def test_parallel_matches_serial_bit_for_bit(self):
        jobs = workload_jobs(FAST_WORKLOADS)
        serial = fast_scheduler(jobs=1).run(jobs)
        sharded = fast_scheduler(jobs=2).run(jobs)
        assert [stable_view(r) for r in serial] == [stable_view(r) for r in sharded]
        assert aggregate(serial)["digest"] == aggregate(sharded)["digest"]

    def test_results_come_back_in_submission_order(self):
        names = ["logic", "scanner", "logic", "scanner"]
        jobs = [
            Job(kind="workload", name=name, spec={"shard": i})
            for i, name in enumerate(names)
        ]
        records = fast_scheduler(jobs=2).run(jobs)
        assert [r["name"] for r in records] == names
        assert [r["index"] for r in records] == [0, 1, 2, 3]

    def test_worker_crash_is_retried_without_loss_or_duplication(self):
        chaos = Job(
            kind="chaos",
            name="crashy",
            spec={"fail_attempts": 1, "mode": "crash"},
            max_attempts=3,
        )
        jobs = [chaos, *workload_jobs(FAST_WORKLOADS)]
        report = fast_scheduler(jobs=2).run_report(jobs)
        assert report.crashes == 1
        assert report.retries == 1
        by_name = {r["name"]: r for r in report.records}
        assert by_name["crashy"]["status"] == "ok"
        assert by_name["crashy"]["attempts"] == 2
        for name in FAST_WORKLOADS:
            assert by_name[name]["status"] == "ok"
        summary = aggregate(report.records)
        assert summary["jobs"] == len(jobs)
        assert summary["duplicates"] == []

    def test_crash_exhausting_attempts_is_recorded_not_raised(self):
        chaos = Job(
            kind="chaos",
            name="hopeless",
            spec={"fail_attempts": 99, "mode": "crash"},
            max_attempts=2,
        )
        (record,) = fast_scheduler(jobs=2).run([chaos])
        assert record["status"] == "crash"
        assert record["attempts"] == 2
        assert record["error"]["type"] == "WorkerCrash"

    def test_hung_worker_is_killed_and_recorded_as_timeout(self):
        chaos = Job(
            kind="chaos",
            name="hangy",
            spec={"fail_attempts": 99, "mode": "hang", "hang_s": 60.0},
            timeout_s=0.3,
            max_attempts=2,
        )
        report = fast_scheduler(jobs=2).run_report([chaos])
        (record,) = report.records
        assert record["status"] == "timeout"
        assert record["error"]["type"] == "WallTimeout"
        assert record["attempts"] == 2
        assert report.timeouts == 2  # both attempts hit the wall deadline

    def test_faulting_job_does_not_poison_its_worker(self):
        # one worker, pool mode: the page-faulting job runs first, then
        # a healthy job must still succeed on the same worker process
        fault = Job(
            kind="asm",
            name="pagefault",
            spec={"source": PAGE_FAULT_ASM, "mapped": True},
            max_steps=1_000,
        )
        jobs = [fault, *workload_jobs(["scanner"])]
        records = fast_scheduler(jobs=1, serial=False).run(jobs)
        assert records[0]["status"] == "fault"
        assert records[1]["status"] == "ok"
        assert records[1]["output"] == EXPECTED_OUTPUT["scanner"]

    def test_transient_worker_error_retried_with_backoff(self):
        chaos = Job(
            kind="chaos",
            name="flaky",
            spec={"fail_attempts": 2, "mode": "error"},
            max_attempts=4,
        )
        report = fast_scheduler(jobs=2).run_report([chaos])
        (record,) = report.records
        assert record["status"] == "ok"
        assert record["attempts"] == 3
        assert report.retries == 2


class TestResultStore:
    def test_streaming_roundtrip_and_digest(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        with ResultStore(path) as store:
            records = fast_scheduler(jobs=2, store=store).run(workload_jobs(FAST_WORKLOADS))
        loaded = ResultStore.load(path)
        assert len(loaded) == len(records)
        assert aggregate(loaded)["digest"] == aggregate(records)["digest"]

    def test_aggregate_is_order_independent(self):
        records = fast_scheduler(jobs=1).run(workload_jobs(FAST_WORKLOADS))
        shuffled = list(records)
        random.Random(7).shuffle(shuffled)
        assert aggregate(shuffled)["digest"] == aggregate(records)["digest"]

    def test_store_lines_are_json_without_payload(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        with ResultStore(path) as store:
            fast_scheduler(jobs=1, store=store).run(experiment_jobs(["table5"]))
        with open(path) as handle:
            (line,) = [l for l in handle if l.strip()]
        record = json.loads(line)
        assert "payload" not in record
        assert record["rendered"].startswith("== Table 5")

    def test_duplicate_keys_flagged(self):
        records = fast_scheduler(jobs=1).run(workload_jobs(["scanner"]))
        summary = aggregate(records + records)
        assert summary["duplicates"]

    def test_load_tolerates_truncated_trailing_line(self, tmp_path, capsys):
        # a crashed farm run leaves a partial final line; load must keep
        # every complete record and warn, not raise
        path = str(tmp_path / "results.jsonl")
        with ResultStore(path) as store:
            records = fast_scheduler(jobs=1, store=store).run(workload_jobs(FAST_WORKLOADS))
        with open(path, "a") as handle:
            handle.write('{"status": "ok", "name": "half-writ')  # no newline, cut mid-string
        loaded = ResultStore.load(path)
        assert len(loaded) == len(records)
        assert aggregate(loaded)["digest"] == aggregate(records)["digest"]
        warning = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert warning["warning"] == "truncated-result-record"
        assert warning["path"] == path

    def test_load_still_rejects_midstream_corruption(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        with ResultStore(path) as store:
            fast_scheduler(jobs=1, store=store).run(workload_jobs(FAST_WORKLOADS))
        with open(path) as handle:
            lines = handle.readlines()
        lines[0] = lines[0][: len(lines[0]) // 2] + "\n"  # damage a non-final record
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError, match="corrupt result record mid-stream"):
            ResultStore.load(path)


class TestExperimentsThroughFarm:
    CHEAP = ["table5", "figure2", "figure3"]

    def test_farm_render_matches_direct_render(self):
        from repro.experiments import REGISTRY, run_named

        direct = [REGISTRY[name]().render() for name in self.CHEAP]
        for jobs in (1, 2):
            results = run_named(self.CHEAP, jobs=jobs)
            assert [r.render() for r in results] == direct

    def test_failed_experiment_raises_with_context(self):
        from repro.experiments import run_named

        with pytest.raises(KeyError):
            run_named(["not_an_experiment"])


class TestDmaUnderFarm:
    def test_dma_job_moves_words_on_free_cycles(self):
        job = Job(
            kind="dma",
            name="scanner",
            spec={"transfer_words": 256},
        )
        (record,) = run_jobs([job], jobs=1)
        assert record["status"] == "ok"
        assert record["extra"]["dma_words_moved"] == 256
        assert 0.0 < record["extra"]["free_fraction"] <= 1.0
        assert record["words"] > 0

    def test_dma_results_identical_across_sharding(self):
        jobs = [
            Job(kind="dma", name=name, spec={"transfer_words": 128})
            for name in FAST_WORKLOADS
        ]
        serial = fast_scheduler(jobs=1).run(jobs)
        sharded = fast_scheduler(jobs=2).run(jobs)
        assert [stable_view(r) for r in serial] == [stable_view(r) for r in sharded]
