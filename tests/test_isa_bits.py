"""32-bit arithmetic helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.bits import (
    MAX_INT32,
    MIN_INT32,
    add32,
    fits_signed,
    fits_unsigned,
    overflows_add,
    overflows_sub,
    s32,
    sign_extend,
    sub32,
    u32,
)


class TestU32S32:
    def test_u32_wraps_negative(self):
        assert u32(-1) == 0xFFFFFFFF

    def test_u32_wraps_large(self):
        assert u32(1 << 32) == 0

    def test_s32_of_high_bit(self):
        assert s32(0x80000000) == MIN_INT32

    def test_s32_of_max(self):
        assert s32(0x7FFFFFFF) == MAX_INT32

    def test_identity_for_small_values(self):
        assert u32(42) == 42
        assert s32(42) == 42

    @given(st.integers())
    def test_round_trip(self, value):
        assert u32(s32(value)) == u32(value)

    @given(st.integers())
    def test_s32_range(self, value):
        assert MIN_INT32 <= s32(value) <= MAX_INT32


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0b0111, 4) == 7

    def test_negative(self):
        assert sign_extend(0b1111, 4) == -1

    def test_wider_field(self):
        assert sign_extend(0x8000, 16) == -32768

    def test_masks_high_bits(self):
        assert sign_extend(0x1F3, 4) == 3

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    @given(st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
    def test_round_trip_16(self, value):
        assert sign_extend(value & 0xFFFF, 16) == value


class TestFits:
    def test_unsigned_bounds(self):
        assert fits_unsigned(0, 4)
        assert fits_unsigned(15, 4)
        assert not fits_unsigned(16, 4)
        assert not fits_unsigned(-1, 4)

    def test_signed_bounds(self):
        assert fits_signed(-8, 4)
        assert fits_signed(7, 4)
        assert not fits_signed(8, 4)
        assert not fits_signed(-9, 4)


class TestWrappingArithmetic:
    @given(st.integers(), st.integers())
    def test_add32_matches_modular(self, a, b):
        assert add32(a, b) == (a + b) % (1 << 32)

    @given(st.integers(), st.integers())
    def test_sub32_matches_modular(self, a, b):
        assert sub32(a, b) == (a - b) % (1 << 32)


class TestOverflow:
    def test_add_overflow_at_max(self):
        assert overflows_add(MAX_INT32, 1)

    def test_add_no_overflow(self):
        assert not overflows_add(MAX_INT32, 0)
        assert not overflows_add(-5, 3)

    def test_sub_overflow_at_min(self):
        assert overflows_sub(MIN_INT32, 1)

    def test_sub_no_overflow(self):
        assert not overflows_sub(0, MAX_INT32)

    @given(st.integers(min_value=MIN_INT32, max_value=MAX_INT32),
           st.integers(min_value=MIN_INT32, max_value=MAX_INT32))
    def test_overflow_iff_result_out_of_range(self, a, b):
        assert overflows_add(a, b) == not_in_range(a + b)


def not_in_range(value: int) -> bool:
    return not (MIN_INT32 <= value <= MAX_INT32)
