"""The workload corpus: every program runs correctly under every layout."""

import pytest

from repro.compiler import CompileOptions, LayoutStrategy, compile_source
from repro.sim import HazardMode, Machine
from repro.workloads import (
    CORPUS,
    EXPECTED_OUTPUT,
    QUICK_PROGRAMS,
    fib,
    puzzle_source,
)


@pytest.mark.parametrize("name", QUICK_PROGRAMS)
def test_corpus_program_output(name, compile_cache):
    compiled = compile_cache(CORPUS[name])
    machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
    machine.run(30_000_000)
    assert machine.output == EXPECTED_OUTPUT[name]


@pytest.mark.parametrize("name", ["scanner", "strings", "hashsym", "wordcount"])
def test_text_programs_under_byte_layout(name, compile_cache):
    compiled = compile_cache(
        CORPUS[name], CompileOptions(layout=LayoutStrategy.BYTE_ALLOCATED)
    )
    machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
    machine.run(30_000_000)
    assert machine.output == EXPECTED_OUTPUT[name]


class TestFibOracle:
    def test_fib_values(self):
        assert [fib(n) for n in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]


class TestPuzzle:
    def test_variants_have_distinct_shape(self):
        sub = puzzle_source(0)
        ptr = puzzle_source(1)
        assert "p[i]" in sub or "p[0]" in sub
        assert "pflat" in ptr and "pflat" not in sub

    @pytest.mark.parametrize("variant", [0, 1])
    def test_limited_search_is_deterministic(self, variant, compile_cache):
        compiled = compile_cache(puzzle_source(variant, limit=25))
        machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
        machine.run(30_000_000)
        # the Python oracle for limit=25 (validated against the full
        # canonical kount of 2005) gives 38
        assert machine.output == [38]

    def test_python_oracle_full_solution(self):
        """The transcription solves the real puzzle: kount = 2005."""
        assert _puzzle_oracle(limit=0) == (True, 2005)

    def test_python_oracle_limited(self):
        assert _puzzle_oracle(limit=25) == (True, 38)

    def test_both_variants_agree_dynamically(self, compile_cache):
        outs = []
        for variant in (0, 1):
            compiled = compile_cache(puzzle_source(variant, limit=40))
            machine = Machine(compiled.program)
            machine.run(50_000_000)
            outs.append(machine.output)
        assert outs[0] == outs[1]


def _puzzle_oracle(limit: int):
    import sys

    sys.setrecursionlimit(100_000)
    D, SIZE, TYPEMAX = 8, 511, 12
    puzzle = [True] * (SIZE + 1)
    for i in range(1, 6):
        for j in range(1, 6):
            for k in range(1, 6):
                puzzle[i + D * (j + D * k)] = False
    pieces = [
        (3, 1, 0, 0), (1, 0, 3, 0), (0, 3, 1, 0), (1, 3, 0, 0), (3, 0, 1, 0),
        (0, 1, 3, 0), (2, 0, 0, 1), (0, 2, 0, 1), (0, 0, 2, 1), (1, 1, 0, 2),
        (1, 0, 1, 2), (0, 1, 1, 2), (1, 1, 1, 3),
    ]
    p = [[False] * (SIZE + 1) for _ in range(TYPEMAX + 1)]
    pclass, piecemax = [0] * 13, [0] * 13
    for index, (im, jm, km, cls) in enumerate(pieces):
        for i in range(im + 1):
            for j in range(jm + 1):
                for k in range(km + 1):
                    p[index][i + D * (j + D * k)] = True
        pclass[index], piecemax[index] = cls, im + D * jm + D * D * km
    piececount = [13, 3, 1, 1]
    kount = 0

    def fit(i, j):
        return all(not (p[i][k] and puzzle[j + k]) for k in range(piecemax[i] + 1))

    def place(i, j):
        for k in range(piecemax[i] + 1):
            if p[i][k]:
                puzzle[j + k] = True
        piececount[pclass[i]] -= 1
        for k in range(j, SIZE + 1):
            if not puzzle[k]:
                return k
        return 0

    def unplace(i, j):
        for k in range(piecemax[i] + 1):
            if p[i][k]:
                puzzle[j + k] = False
        piececount[pclass[i]] += 1

    def trial(j):
        nonlocal kount
        if limit > 0 and kount >= limit:
            return True
        for i in range(TYPEMAX + 1):
            if piececount[pclass[i]] and fit(i, j):
                k = place(i, j)
                if trial(k) or k == 0:
                    kount += 1
                    return True
                unplace(i, j)
        kount += 1
        return False

    m = 1 + D * (1 + D)
    assert fit(0, m)
    return trial(place(0, m)), kount
