"""Physical memory, the surprise register, and the bare-metal machine."""

import pytest

from repro.sim import BusError, ExceptionCause, PhysicalMemory, SurpriseRegister
from repro.sim.machine import run_source


class TestPhysicalMemory:
    def test_read_write(self):
        memory = PhysicalMemory(1024)
        memory.write(5, 0xDEADBEEF)
        assert memory.read(5) == 0xDEADBEEF

    def test_uninitialized_reads_zero(self):
        assert PhysicalMemory(16).read(3) == 0

    def test_values_wrap_to_32_bits(self):
        memory = PhysicalMemory(16)
        memory.write(0, 1 << 40)
        assert memory.read(0) == 0

    def test_bounds(self):
        memory = PhysicalMemory(16)
        with pytest.raises(BusError):
            memory.read(16)
        with pytest.raises(BusError):
            memory.write(-1, 0)

    def test_fetch_counted_separately(self):
        memory = PhysicalMemory(16)
        memory.read(0, fetch=True)
        memory.read(0)
        assert memory.stats.fetches == 1
        assert memory.stats.reads == 1
        assert memory.stats.data_total == 1

    def test_peek_poke_do_not_count(self):
        memory = PhysicalMemory(16)
        memory.poke(1, 9)
        assert memory.peek(1) == 9
        assert memory.stats.data_total == 0

    def test_load_image(self):
        memory = PhysicalMemory(64)
        memory.load_image({0: 1, 5: 2}, base=10)
        assert memory.peek(10) == 1 and memory.peek(15) == 2


class TestSurpriseRegister:
    def test_reset_state_is_supervisor(self):
        sr = SurpriseRegister()
        assert sr.supervisor
        assert not sr.interrupts_enabled

    def test_flag_accessors(self):
        sr = SurpriseRegister()
        sr.interrupts_enabled = True
        sr.overflow_traps_enabled = True
        sr.mapping_enabled = True
        assert sr.interrupts_enabled and sr.overflow_traps_enabled and sr.mapping_enabled
        sr.mapping_enabled = False
        assert not sr.mapping_enabled

    def test_enter_exception_saves_previous(self):
        sr = SurpriseRegister()
        sr.supervisor = False
        sr.interrupts_enabled = True
        sr.mapping_enabled = True
        sr.overflow_traps_enabled = True
        sr.enter_exception(ExceptionCause.TRAP, 42)
        assert sr.supervisor and not sr.interrupts_enabled and not sr.mapping_enabled
        assert not sr.overflow_traps_enabled
        assert sr.major_cause is ExceptionCause.TRAP
        assert sr.minor_cause == 42
        assert not sr.previous_supervisor
        assert sr.previous_interrupts and sr.previous_mapping and sr.previous_overflow

    def test_restore_previous_round_trips(self):
        sr = SurpriseRegister()
        sr.supervisor = False
        sr.interrupts_enabled = True
        sr.mapping_enabled = True
        sr.enter_exception(ExceptionCause.INTERRUPT)
        sr.restore_previous()
        assert not sr.supervisor
        assert sr.interrupts_enabled and sr.mapping_enabled

    def test_cause_fields_do_not_clobber_flags(self):
        sr = SurpriseRegister()
        sr.enter_exception(ExceptionCause.PAGE_FAULT, 0xFFF)
        assert sr.minor_cause == 0xFFF
        assert sr.supervisor

    def test_nested_exception_clobbers_previous_fields(self):
        """Hardware keeps exactly one level of previous-state: a second
        ``enter_exception`` overwrites the user state saved by the
        first.  This is the paper's case for software save/restore."""
        sr = SurpriseRegister()
        sr.supervisor = False
        sr.interrupts_enabled = True
        sr.enter_exception(ExceptionCause.PAGE_FAULT, 7)
        assert not sr.previous_supervisor  # user state held, one level deep
        sr.enter_exception(ExceptionCause.INTERRUPT)
        assert sr.previous_supervisor  # now holds handler state; user state gone

    def test_software_save_restores_across_nesting(self):
        """The kernel's dispatch prologue stores the raw register value
        and its epilogue writes it back; that round-trip must survive a
        nested fault between save and restore."""
        sr = SurpriseRegister()
        sr.supervisor = False
        sr.interrupts_enabled = True
        sr.mapping_enabled = True
        sr.overflow_traps_enabled = True
        sr.enter_exception(ExceptionCause.TRAP, 1)
        saved = sr.value  # st surprise, @SAVE_SR
        sr.enter_exception(ExceptionCause.INTERRUPT)  # nested fault in the handler
        sr.restore_previous()  # inner handler returns
        sr.value = saved  # wrspec @SAVE_SR, surprise
        sr.restore_previous()  # outer rfs back to the user
        assert not sr.supervisor
        assert sr.interrupts_enabled and sr.mapping_enabled and sr.overflow_traps_enabled


class TestMachineHarness:
    def test_io_traps(self):
        machine = run_source(
            """
            start:  trap #3
                    add r1, #1, r1
                    trap #1
                    movi #65, r1
                    trap #2
                    trap #0
            """,
            inputs=[9],
        )
        assert machine.output == [10]
        assert machine.output_text == "A"

    def test_timeout_on_runaway(self):
        with pytest.raises(TimeoutError):
            run_source("start: jmp start\nnop", max_steps=1000)

    def test_word_at(self):
        machine = run_source(
            """
            start:  movi #77, r2
                    st r2, @cell
                    trap #0
            cell:   .word 0
            """
        )
        assert machine.word_at("cell") == 77


class TestTracing:
    def test_trace_records_writes_and_branches(self):
        from repro.asm import assemble
        from repro.sim import Machine, trace

        machine = Machine(
            assemble(
                """
        start:  mov #5, r2
                add r2, #1, r2
                jmp out
                nop
        out:    trap #0
        """
            )
        )
        records = list(trace(machine.cpu, max_steps=100))
        assert records[0].writes == {2: 5}
        assert records[1].writes == {2: 6}
        assert records[2].branched
        # mov, add, jmp, delay-slot nop; the halting trap itself is
        # swallowed, so the slot is the last yielded record
        assert len(records) == 4
        assert records[-1].word.is_nop

    def test_trace_propagates_faults(self):
        import pytest
        from repro.asm import assemble
        from repro.sim import Machine, PrivilegeViolation, trace

        machine = Machine(assemble("start: rdspec surprise, r1\ntrap #0"))
        machine.cpu.surprise.supervisor = False
        with pytest.raises(PrivilegeViolation):
            list(trace(machine.cpu))
