"""The condition-code baseline: ISA semantics, disciplines, compiler."""

import pytest

from repro.ccmachine import (
    AbsAddr,
    Alu,
    ArchitectureModel,
    Br,
    CcAluOp,
    CcCond,
    CcDiscipline,
    CcImm,
    CcMachine,
    CcMem,
    CcReg,
    CcStrategy,
    Cmp,
    DispAddr,
    Halt,
    Jsr,
    M68000,
    MIPS,
    Move,
    Pop,
    Push,
    Rts,
    Scc,
    SysWrite,
    VAX,
    compile_cc_source,
    resolve,
    table2,
)


def run_instrs(stream, discipline=CcDiscipline.OPERATIONS_AND_MOVES, setup=None):
    machine = CcMachine(resolve(stream), discipline)
    if setup:
        setup(machine)
    machine.run(100_000)
    return machine


class TestMachineSemantics:
    def test_alu_is_two_address(self):
        machine = run_instrs(
            [
                (None, Move(CcImm(10), CcReg(1))),
                (None, Alu(CcAluOp.SUB, CcImm(3), CcReg(1))),
                (None, SysWrite(CcReg(1))),
                (None, Halt()),
            ]
        )
        assert machine.output == [7]

    def test_memory_operands(self):
        machine = run_instrs(
            [
                (None, Move(CcImm(5), CcMem(AbsAddr(100)))),
                (None, Alu(CcAluOp.ADD, CcMem(AbsAddr(100)), CcMem(AbsAddr(100)))),
                (None, SysWrite(CcMem(AbsAddr(100)))),
                (None, Halt()),
            ]
        )
        assert machine.output == [10]
        assert machine.stats.memory_reads >= 2
        assert machine.stats.memory_writes >= 2

    def test_cmp_sets_cc_without_writing(self):
        machine = run_instrs(
            [
                (None, Move(CcImm(3), CcReg(1))),
                (None, Cmp(CcReg(1), CcImm(5))),
                (None, Br(CcCond.LT, "less")),
                (None, SysWrite(CcImm(0))),
                (None, Halt()),
                ("less", SysWrite(CcImm(1))),
                (None, Halt()),
            ]
        )
        assert machine.output == [1]

    def test_signed_comparison(self):
        machine = run_instrs(
            [
                (None, Move(CcImm(-1), CcReg(1))),
                (None, Cmp(CcReg(1), CcImm(1))),
                (None, Br(CcCond.LT, "neg")),
                (None, SysWrite(CcImm(0))),
                (None, Halt()),
                ("neg", SysWrite(CcImm(1))),
                (None, Halt()),
            ]
        )
        assert machine.output == [1]

    def test_scc_materializes_condition(self):
        machine = run_instrs(
            [
                (None, Cmp(CcImm(2), CcImm(2))),
                (None, Scc(CcCond.EQ, CcReg(1))),
                (None, SysWrite(CcReg(1))),
                (None, Halt()),
            ]
        )
        assert machine.output == [1]

    def test_call_and_return(self):
        machine = run_instrs(
            [
                (None, Jsr("sub")),
                (None, SysWrite(CcReg(0))),
                (None, Halt()),
                ("sub", Move(CcImm(9), CcReg(0))),
                (None, Rts()),
            ]
        )
        assert machine.output == [9]

    def test_push_pop(self):
        machine = run_instrs(
            [
                (None, Push(CcImm(4))),
                (None, Push(CcImm(5))),
                (None, Pop(CcReg(1))),
                (None, Pop(CcReg(2))),
                (None, SysWrite(CcReg(1))),
                (None, SysWrite(CcReg(2))),
                (None, Halt()),
            ]
        )
        assert machine.output == [5, 4]


class TestDisciplines:
    def stream_move_then_branch(self):
        # mov 0, then mov 5, then branch-if-zero with NO compare: only a
        # machine whose moves set the CC sees the final (nonzero) move
        return [
            (None, Move(CcImm(0), CcReg(1))),
            (None, Move(CcImm(5), CcReg(2))),
            (None, Br(CcCond.EQ, "zero")),
            (None, SysWrite(CcImm(0))),
            (None, Halt()),
            ("zero", SysWrite(CcImm(1))),
            (None, Halt()),
        ]

    def test_vax_moves_set_cc(self):
        machine = run_instrs(
            self.stream_move_then_branch(), CcDiscipline.OPERATIONS_AND_MOVES
        )
        assert machine.output == [0]  # the move of 5 cleared Z

    def test_360_moves_do_not_set_cc(self):
        machine = run_instrs(
            self.stream_move_then_branch(), CcDiscipline.OPERATIONS_ONLY
        )
        assert machine.output == [1]  # Z still holds its power-on state

    def test_weighted_cost_model(self):
        machine = run_instrs(
            [
                (None, Move(CcImm(1), CcReg(1))),   # 1
                (None, Cmp(CcReg(1), CcImm(1))),    # 2
                (None, Br(CcCond.NE, "x")),         # 4
                ("x", Halt()),
            ]
        )
        assert machine.stats.weighted_cost == 1 + 2 + 4 + 1  # + halt


class TestCcCompiler:
    SOURCE = """
    program ccdemo;
    var a: array [0..4] of integer;
        i, s: integer;
    function sq(n: integer): integer;
    begin sq := n * n end;
    begin
      s := 0;
      for i := 0 to 4 do begin
        a[i] := sq(i);
        s := s + a[i]
      end;
      writeln(s)
    end.
    """

    @pytest.mark.parametrize("strategy", list(CcStrategy))
    def test_all_strategies_compute_the_same(self, strategy):
        program = compile_cc_source(self.SOURCE, strategy)
        machine = CcMachine(program)
        machine.run(1_000_000)
        assert machine.output == [0 + 1 + 4 + 9 + 16]

    def test_cond_set_emits_scc(self):
        source = """
        program p;
        var a, b: integer; f: boolean;
        begin a := 1; b := 2; f := (a = b) or (a < b); if f then writeln(1) end.
        """
        program = compile_cc_source(source, CcStrategy.COND_SET)
        from repro.ccmachine.isa import Scc as SccInstr

        assert any(isinstance(i, SccInstr) for i in program.instrs)

    def test_full_eval_avoids_scc(self):
        source = """
        program p;
        var a, b: integer; f: boolean;
        begin a := 1; b := 2; f := (a = b) or (a < b); if f then writeln(1) end.
        """
        program = compile_cc_source(source, CcStrategy.FULL_EVAL)
        from repro.ccmachine.isa import Scc as SccInstr

        assert not any(isinstance(i, SccInstr) for i in program.instrs)

    def test_early_out_executes_fewer_instructions(self):
        source = """
        program p;
        var i, hits: integer; f: boolean;
        begin
          hits := 0;
          for i := 0 to 199 do begin
            f := (i = 0) or (i = 1) or (i = 2) or (i = 3);
            if f then hits := hits + 1
          end;
          writeln(hits)
        end.
        """
        full = CcMachine(compile_cc_source(source, CcStrategy.FULL_EVAL))
        full.run(1_000_000)
        early = CcMachine(compile_cc_source(source, CcStrategy.EARLY_OUT))
        early.run(1_000_000)
        assert full.output == early.output == [4]
        assert early.stats.instructions < full.stats.instructions

    def test_var_params(self):
        source = """
        program p;
        var g: integer;
        procedure bump(var x: integer);
        begin x := x + 5 end;
        begin g := 1; bump(g); writeln(g) end.
        """
        machine = CcMachine(compile_cc_source(source))
        machine.run(100_000)
        assert machine.output == [6]

    def test_memory_operand_comparison_pattern(self):
        # `cmp Rec, Key` should appear with direct memory operands
        source = """
        program p;
        var rec, key: integer; f: boolean;
        begin rec := 1; key := 1; f := rec = key; if f then writeln(1) end.
        """
        program = compile_cc_source(source)
        cmps = [i for i in program.instrs if isinstance(i, Cmp)]
        assert any(
            isinstance(c.a, CcMem) and isinstance(c.b, CcMem) for c in cmps
        )


class TestFeatureModels:
    def test_table2_covers_five_architectures(self):
        assert set(table2()) == {"M68000", "MIPS", "VAX", "360", "PDP-10"}

    def test_mips_has_no_condition_codes(self):
        assert not MIPS.has_condition_codes

    def test_m68000_has_conditional_set(self):
        assert M68000.has_conditional_set
        assert M68000.discipline is CcDiscipline.OPERATIONS_ONLY

    def test_vax_discipline(self):
        assert VAX.discipline is CcDiscipline.OPERATIONS_AND_MOVES
