"""The reorganizer: DAG, scheduling, packing, branch-delay filling.

The headline property: every optimization level produces a program that
computes the same results, verified under the CHECKED hazard mode (a
violated pipeline constraint raises instead of corrupting silently).
"""

import pytest

from repro.asm import assemble_pieces
from repro.isa.operations import AluOp, Comparison
from repro.isa.pieces import Alu, CompareBranch, Displacement, Imm, Load, Store
from repro.isa.registers import Reg
from repro.reorg import (
    ALL_LEVELS,
    DepKind,
    DependenceDag,
    FlowGraph,
    LOAD_DELAY,
    OptLevel,
    liveness,
    min_distance,
    reorganize,
    reorganize_all_levels,
    split_blocks,
)
from repro.sim import HazardMode, Machine


class TestPipelineModel:
    def test_load_consumer_distance(self):
        load = Load(Displacement(Reg(1), 0), Reg(2))
        assert min_distance(load, DepKind.RAW) == 1 + LOAD_DELAY

    def test_alu_consumer_distance(self):
        alu = Alu(AluOp.ADD, Reg(1), Reg(2), Reg(3))
        assert min_distance(alu, DepKind.RAW) == 1

    def test_anti_dependence_allows_same_word(self):
        alu = Alu(AluOp.ADD, Reg(1), Reg(2), Reg(3))
        assert min_distance(alu, DepKind.WAR) == 0


class TestDag:
    def _dag(self, source):
        return DependenceDag([p for _l, p in assemble_pieces(source)])

    def test_raw_edge(self):
        dag = self._dag("add r1, r2, r3\nadd r3, r4, r5")
        assert dag.nodes[0].succs == {1: 1}

    def test_load_use_edge_distance_two(self):
        dag = self._dag("ld 0(r1), r2\nadd r2, r3, r4")
        assert dag.nodes[0].succs[1] == 2

    def test_independent_pieces_have_no_edge(self):
        dag = self._dag("add r1, r2, r3\nadd r4, r5, r6")
        assert not dag.nodes[0].succs

    def test_war_edge_distance_zero(self):
        dag = self._dag("add r1, r2, r3\nadd r4, r5, r1")
        assert dag.nodes[0].succs == {1: 0}

    def test_waw_edge(self):
        dag = self._dag("add r1, r2, r3\nadd r4, r5, r3")
        assert dag.nodes[0].succs == {1: 1}

    def test_store_load_alias_conservative(self):
        dag = self._dag("st r1, (r2+r3)\nld 0(r4), r5")
        assert 1 in dag.nodes[0].succs

    def test_disjoint_displacements_not_ordered(self):
        dag = self._dag("st r1, 0(r2)\nld 1(r2), r3")
        assert 1 not in dag.nodes[0].succs

    def test_same_displacement_ordered(self):
        dag = self._dag("st r1, 0(r2)\nld 0(r2), r3")
        assert dag.nodes[0].succs[1] == 1

    def test_rewritten_base_defeats_disambiguation(self):
        dag = self._dag("st r1, 0(r2)\nadd r2, #4, r2\nld 1(r2), r3")
        assert 2 in dag.nodes[0].succs  # cannot prove disjoint any more

    def test_absolutes_are_order_pinned(self):
        """Distinct absolute addresses stay ordered: the absolute window
        hosts memory-mapped devices with select-then-trigger protocols
        (this once let the scheduler swap the kernel's DISK_PAGE select
        and DISK_FRAME trigger, paging in the wrong page)."""
        dag = self._dag("st r1, @100\nst r2, @101")
        assert 1 in dag.nodes[0].succs

    def test_absolute_loads_are_order_pinned(self):
        """Device reads have side effects (input queues, fault latches):
        two absolute loads must not commute."""
        dag = self._dag("ld @100, r1\nld @101, r2")
        assert 1 in dag.nodes[0].succs

    def test_displacement_loads_still_commute(self):
        dag = self._dag("ld 0(r5), r1\nld 1(r5), r2")
        assert 1 not in dag.nodes[0].succs

    def test_flow_is_a_barrier(self):
        dag = self._dag("add r1, r2, r3\nstart2: jmp start2\n")
        assert 1 in dag.nodes[0].succs

    def test_heights_follow_critical_path(self):
        dag = self._dag("ld 0(r1), r2\nadd r2, r3, r4\nadd r4, r5, r6")
        assert dag.nodes[0].height > dag.nodes[1].height > dag.nodes[2].height

    def test_topological_check(self):
        dag = self._dag("add r1, r2, r3\nadd r3, r4, r5")
        assert dag.topological_check([0, 1])
        assert not dag.topological_check([1, 0])


class TestBlocks:
    def test_split_on_labels_and_flow(self):
        stream = assemble_pieces(
            "a: add r1, r2, r3\njmp c\nb: add r1, r2, r3\nc: nop"
        )
        blocks = split_blocks(stream)
        assert len(blocks) == 3
        assert blocks[0].label == "a" and blocks[0].flow is not None
        assert blocks[1].label == "b" and blocks[1].falls_through
        assert blocks[2].label == "c"

    def test_fallthrough_links(self):
        stream = assemble_pieces("a: nop\nb: beq r1, #0, a\nnop")
        graph = FlowGraph.build(stream)
        assert graph.successors[1] == [0, 2]

    def test_unconditional_jump_does_not_fall_through(self):
        stream = assemble_pieces("a: jmp a\nb: nop")
        graph = FlowGraph.build(stream)
        assert graph.successors[0] == [0]

    def test_liveness_simple_loop(self):
        stream = assemble_pieces(
            """
            top:    add r1, #1, r1
                    bne r1, r2, top
                    mov r3, r4
            """
        )
        graph = FlowGraph.build(stream)
        live = liveness(graph)
        assert Reg(1) in live[0]
        assert Reg(2) in live[0]

    def test_liveness_conservative_at_stream_exit(self):
        stream = assemble_pieces("a: trap #0")
        graph = FlowGraph.build(stream)
        live = liveness(graph)
        assert len(live[0]) == 16  # everything live: unknown continuation


SEMANTIC_CASES = {
    "straight-line": """
        start:  mov #3, r2
                movi #100, r3
                add r2, r3, r4
                st r4, @64
                ld @64, r5
                add r5, #1, r1
                trap #1
                trap #0
    """,
    "load-chains": """
        start:  lim #4096, r2
                mov #5, r3
                st r3, 0(r2)
                ld 0(r2), r4
                add r4, r4, r5
                st r5, 1(r2)
                ld 1(r2), r6
                add r6, #1, r1
                trap #1
                trap #0
    """,
    "loop": """
        start:  mov #0, r1
                mov #10, r2
        top:    add r1, r2, r1
                sub r2, #1, r2
                bne r2, #0, top
                trap #1
                trap #0
    """,
    "byte-ops": """
        start:  movi #65, r2
                lim #16384, r3
                sll r3, #2, r4
                add r4, #2, r4
                ld (r4>>2), r5
                mov r4, lo
                ic r2, r5
                st r5, (r4>>2)
                ld 0(r3), r6
                srl r6, #15, r1
                srl r1, #1, r1
                trap #1
                trap #0
    """,
    "diamond": """
        start:  mov #7, r2
                ble r2, #10, less
                mov #1, r3
                jmp join
                nop
        less:   mov #2, r3
        join:   add r3, r2, r1
                trap #1
                trap #0
    """,
}


class TestSemanticEquivalence:
    @pytest.mark.parametrize("name", sorted(SEMANTIC_CASES))
    def test_all_levels_agree(self, name):
        stream = assemble_pieces(SEMANTIC_CASES[name])
        outputs = {}
        for level in ALL_LEVELS:
            program = reorganize(stream, level).to_program(entry_symbol="start")
            machine = Machine(program, hazard_mode=HazardMode.CHECKED)
            machine.run(100_000)
            outputs[level] = machine.output
        values = list(outputs.values())
        assert all(v == values[0] for v in values), outputs

    @pytest.mark.parametrize("name", sorted(SEMANTIC_CASES))
    def test_levels_monotonically_improve(self, name):
        stream = assemble_pieces(SEMANTIC_CASES[name])
        counts = [reorganize(stream, level).static_count for level in ALL_LEVELS]
        assert counts == sorted(counts, reverse=True)


class TestReorganizerStructure:
    def test_none_level_keeps_source_order(self):
        stream = assemble_pieces("start: add r1, r2, r3\nadd r4, r5, r6\ntrap #0")
        result = reorganize(stream, OptLevel.NONE)
        nonnop = [w for _l, w in result.words if not w.is_nop]
        assert repr(nonnop[0].pieces[0]).startswith("add r1")

    def test_none_inserts_load_delay_noop(self):
        stream = assemble_pieces("start: ld 0(r1), r2\nadd r2, r3, r4\ntrap #0")
        result = reorganize(stream, OptLevel.NONE)
        assert result.noop_count >= 1

    def test_reorganize_avoids_noop_when_possible(self):
        stream = assemble_pieces(
            "start: ld 0(r1), r2\nadd r2, r3, r4\nadd r5, r6, r7\ntrap #0"
        )
        none = reorganize(stream, OptLevel.NONE)
        reorg = reorganize(stream, OptLevel.REORGANIZE)
        assert reorg.noop_count < none.noop_count

    def test_packing_reduces_count(self):
        stream = assemble_pieces(
            """
            start:  ld 0(r10), r2
                    add #1, r5, r5
                    st r5, 1(r10)
                    add #2, r6, r6
                    trap #0
            """
        )
        pack = reorganize(stream, OptLevel.PACK)
        assert pack.packed_count >= 1

    def test_branch_delay_slots_left_as_noops_before_filling(self):
        stream = assemble_pieces("start: jmp start\nnop")
        result = reorganize(stream, OptLevel.PACK)
        assert result.noop_count >= 1

    def test_fill_stats_present_only_at_full_level(self):
        stream = assemble_pieces("start: jmp start")
        assert reorganize(stream, OptLevel.PACK).fill_stats is None
        assert reorganize(stream, OptLevel.BRANCH_DELAY).fill_stats is not None

    def test_to_program_resolves_labels(self):
        stream = assemble_pieces("start: jmp start")
        program = reorganize(stream, OptLevel.NONE).to_program()
        flow = program.fetch(program.symbols["start"]).flow
        assert flow.target == program.symbols["start"]

    def test_cross_block_load_hazard_fixed(self):
        # block ends with a load; the fall-through successor reads it
        stream = assemble_pieces(
            """
            start:  ld 0(r1), r2
            next:   add r2, r3, r4
                    trap #0
            """
        )
        for level in ALL_LEVELS:
            program = reorganize(stream, level).to_program(entry_symbol="start")
            machine = Machine(program, hazard_mode=HazardMode.CHECKED)
            machine.run(1000)  # CHECKED raises if the fixup failed


class TestDelayFilling:
    def test_hoist_moves_independent_word(self):
        stream = assemble_pieces(
            """
            start:  add r4, #1, r4
                    beq r1, #0, out
                    add r2, r2, r2
            out:    trap #0
            """
        )
        result = reorganize(stream, OptLevel.BRANCH_DELAY)
        assert result.fill_stats.hoisted >= 1

    def test_branch_comparison_dependency_blocks_hoist(self):
        stream = assemble_pieces(
            """
            start:  add r1, #1, r1
                    beq r1, #0, out
            out:    trap #0
            """
        )
        result = reorganize(stream, OptLevel.BRANCH_DELAY)
        assert result.fill_stats.hoisted == 0

    def test_loop_rotation_preserves_semantics(self):
        source = """
        start:  mov #0, r1
                movi #25, r2
        top:    add r1, r2, r1
                sub r2, #1, r2
                bne r2, #0, top
                mov r1, r1
                trap #1
                trap #0
        """
        stream = assemble_pieces(source)
        for level in (OptLevel.NONE, OptLevel.BRANCH_DELAY):
            program = reorganize(stream, level).to_program(entry_symbol="start")
            machine = Machine(program, hazard_mode=HazardMode.CHECKED)
            machine.run(10_000)
            assert machine.output == [sum(range(1, 26))]

    def test_rotation_target_is_frozen_against_reordering(self):
        """Regression: a rotation split label points at a block's second
        word by offset; a later hoist inside that block must not reorder
        its prefix (this once mis-executed branching boolean code)."""
        source = """
        start:  mov #5, r9
                mov #7, r10
                mov #1, r2
                beq r9, #5, Lj
                nop
                mov #0, r2
        Lj:     mov r2, r8
                trap #0?
        """
        # the exact shape that exposed it: a forward jump rotated into a
        # block whose own conditional branch then wants to hoist
        program_source = """
        start:  mov #5, r9
                mov #7, r10
                beq r9, #0, Lelse
                mov #1, r1
                jmp Ljoin
        Lelse:  mov #2, r1
        Ljoin:  mov #1, r2
                bne r9, #4, Lsc
                mov #9, r2
        Lsc:    mov r2, r1
                trap #1
                trap #0
        """
        stream = assemble_pieces(program_source)
        for level in ALL_LEVELS:
            program = reorganize(stream, level).to_program(entry_symbol="start")
            machine = Machine(program, hazard_mode=HazardMode.CHECKED)
            machine.run(1000)
            # r9 = 5: not 0 -> r1 := 1 path; join: r2 := 1; 5 != 4 so
            # branch to Lsc skips r2 := 9; result r2 == 1
            assert machine.output == [1], level

    def test_hoist_never_moves_link_register_traffic_past_jal(self):
        """Regression: a word that READS ra must not hoist into a jal's
        delay slot -- the slot executes after the link write, so the
        word would capture the callee's return address (this once sent
        a compiled function into an infinite self-return loop)."""
        source = """
        start:  mov #7, r15
                add r15, #1, r2    ; reads ra: must stay before the jal
                jal sub
                mov r2, r1
                trap #1
                trap #0
        sub:    jmpr ra
        """
        stream = assemble_pieces(source)
        for level in ALL_LEVELS:
            program = reorganize(stream, level).to_program(entry_symbol="start")
            machine = Machine(program, hazard_mode=HazardMode.CHECKED)
            machine.run(1000)
            assert machine.output == [8], level

    def test_stores_never_fill_speculatively(self):
        # the fall-through word is a store: must not move into the slot
        stream = assemble_pieces(
            """
            start:  beq r1, #0, out
                    st r2, 0(r3)
                    add r2, #1, r2
            out:    trap #0
            """
        )
        result = reorganize(stream, OptLevel.BRANCH_DELAY)
        words = [w for _l, w in result.words]
        branch_pos = next(
            i for i, w in enumerate(words) if w.flow is not None and not w.flow.is_flow is False
        )
        slot = words[branch_pos + 1]
        assert slot.mem is None or not slot.mem.is_store
