"""Edge cases across the stack that the main suites do not pin down."""

import pytest

from repro.asm import assemble
from repro.asm.program import Program
from repro.ccmachine import CcMachineError, resolve
from repro.compiler import CompileError, CompileOptions, compile_source
from repro.sim import HazardMode, Machine
from repro.system import Kernel, MAX_PROCESSES


class TestProgramImage:
    def test_fetch_outside_image(self):
        program = assemble("start: nop")
        with pytest.raises(KeyError):
            program.fetch(999)

    def test_symbol_lookup_error(self):
        program = assemble("start: nop")
        with pytest.raises(KeyError):
            program.symbol("missing")

    def test_disassemble_window(self):
        program = assemble("start: nop\nnop\nnop")
        listing = program.disassemble(start=1, count=1)
        assert listing.count("nop") == 1

    def test_code_size_excludes_data(self):
        program = assemble("start: nop\nd: .word 1, 2, 3")
        assert program.code_size == 1
        assert program.size == 4


class TestCcResolver:
    def test_duplicate_label(self):
        from repro.ccmachine import Halt

        with pytest.raises(CcMachineError, match="redefined"):
            resolve([("a", Halt()), ("a", Halt())])

    def test_undefined_target(self):
        from repro.ccmachine import Br, CcCond

        with pytest.raises(CcMachineError, match="undefined"):
            resolve([(None, Br(CcCond.ALWAYS, "nowhere"))])


class TestKernelLimits:
    def test_process_table_capacity(self):
        kernel = Kernel()
        program = compile_source("program p; begin writeln(1) end.").program
        for _ in range(MAX_PROCESSES):
            kernel.add_process(program)
        with pytest.raises(RuntimeError, match="full"):
            kernel.add_process(program)

    def test_boot_requires_processes(self):
        with pytest.raises(RuntimeError, match="no processes"):
            Kernel().boot()

    def test_sixteen_processes_run(self):
        kernel = Kernel(quantum=1000)
        program = compile_source(
            "program p; var i, s: integer;"
            "begin s := 0; for i := 1 to 15 do s := s + i; writeln(s) end."
        ).program
        for _ in range(MAX_PROCESSES):
            kernel.add_process(program)
        kernel.run(200_000_000)
        for pid in range(MAX_PROCESSES):
            assert kernel.output(pid) == [120], pid


class TestCompilerLimits:
    def test_empty_program(self):
        machine = Machine(compile_source("program p; begin end.").program)
        machine.run(1000)
        assert machine.output == []

    def test_large_frame(self):
        source = """
        program p;
        procedure big;
        var a: array [0..299] of integer;
            i: integer;
        begin
          for i := 0 to 299 do a[i] := i;
          writeln(a[299])
        end;
        begin big end.
        """
        machine = Machine(
            compile_source(source).program, hazard_mode=HazardMode.CHECKED
        )
        machine.run(1_000_000)
        assert machine.output == [299]

    def test_deep_argument_stack(self):
        source = """
        program p;
        function add8(a, b, c, d, e, f, g, h: integer): integer;
        begin add8 := a + b + c + d + e + f + g + h end;
        begin writeln(add8(1, 2, 3, 4, 5, 6, 7, 8)) end.
        """
        machine = Machine(
            compile_source(source).program, hazard_mode=HazardMode.CHECKED
        )
        machine.run(100_000)
        assert machine.output == [36]

    def test_large_constant_assignment(self):
        source = """
        program p;
        var x: integer;
        begin
          x := 2000000000;
          writeln(x);
          x := -2000000000;
          writeln(x)
        end.
        """
        machine = Machine(
            compile_source(source).program, hazard_mode=HazardMode.CHECKED
        )
        machine.run(10_000)
        assert machine.output == [2000000000, -2000000000]

    def test_comparisons_near_the_integer_limits(self):
        source = """
        program p;
        var big, small: integer;
        begin
          big := 2147483647;
          small := -2147483647;
          if big > small then writeln(1) else writeln(0);
          if small < 0 then writeln(1) else writeln(0);
          if big + 1 < 0 then writeln(1) else writeln(0)  { wraps }
        end.
        """
        machine = Machine(
            compile_source(source).program, hazard_mode=HazardMode.CHECKED
        )
        machine.run(10_000)
        assert machine.output == [1, 1, 1]


class TestUpcomingPcs:
    def test_sequential(self):
        machine = Machine(assemble("start: nop\nnop\nnop\nnop"))
        assert machine.cpu.upcoming_pcs(3) == [0, 1, 2]

    def test_through_taken_branch(self):
        machine = Machine(assemble("start: jmp t\nnop\nnop\nt: nop"))
        machine.cpu.step()  # the jmp; its slot is next, then the target
        assert machine.cpu.upcoming_pcs(3) == [1, 3, 4]

    def test_through_indirect_jump(self):
        machine = Machine(
            assemble("start: lim t, r2\njmpr r2\nnop\nnop\nt: nop")
        )
        machine.cpu.step()  # lim
        machine.cpu.step()  # jmpr: two slots follow
        assert machine.cpu.upcoming_pcs(4) == [2, 3, 4, 5]
