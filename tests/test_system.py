"""The systems layer: paging, devices, the kernel, context switching, DMA."""

import pytest

from repro.compiler import compile_source
from repro.sim import HazardMode, PageFault, PhysicalMemory
from repro.system import (
    ENTRY_VALID,
    Kernel,
    MappedMemory,
    PAGE_WORDS,
    PageMap,
    build_kernel_program,
)
from repro.workloads import CORPUS, EXPECTED_OUTPUT


class TestPageMap:
    def test_translate_mapped_page(self):
        pm = PageMap()
        pm.map_page(3, 17)
        assert pm.translate(3 * PAGE_WORDS + 5) == 17 * PAGE_WORDS + 5

    def test_miss_raises_and_records(self):
        pm = PageMap()
        with pytest.raises(PageFault):
            pm.translate(1234)
        assert pm.take_pending_fault() == 1234
        assert pm.take_pending_fault() == 0xFFFFFFFF  # cleared on read

    def test_entry_register_view(self):
        pm = PageMap()
        assert pm.entry_value(9) == 0
        pm.set_entry_value(9, 42 | ENTRY_VALID)
        assert pm.entry_value(9) == 42 | ENTRY_VALID
        assert pm.translate(9 * PAGE_WORDS) == 42 * PAGE_WORDS
        pm.set_entry_value(9, 0)  # clearing the valid bit unmaps
        with pytest.raises(PageFault):
            pm.translate(9 * PAGE_WORDS)

    def test_referenced_and_dirty_bits(self):
        pm = PageMap()
        pm.map_page(1, 2)
        pm.translate(PAGE_WORDS, is_write=False)
        assert pm.referenced[1] and not pm.dirty[1]
        pm.translate(PAGE_WORDS, is_write=True)
        assert pm.dirty[1]


class TestMappedMemory:
    def test_unmapped_passes_through(self):
        memory = MappedMemory(PhysicalMemory(1 << 16))
        memory.write(100, 7)
        assert memory.read(100) == 7

    def test_mapped_translates(self):
        memory = MappedMemory(PhysicalMemory(1 << 16))
        memory.pagemap.map_page(0, 3)
        memory.write(5, 99, mapped=True)
        assert memory.physical.peek(3 * PAGE_WORDS + 5) == 99
        assert memory.read(5, mapped=True) == 99


class TestKernelBoot:
    def test_rom_fits_its_region(self):
        program = build_kernel_program()
        assert program.code_size < 0x300

    def test_single_process(self):
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(compile_source(CORPUS["fib_iterative"]).program)
        kernel.run()
        assert kernel.output(0) == EXPECTED_OUTPUT["fib_iterative"]
        assert kernel.process_state(0) == 2  # exited

    def test_demand_paging_counts(self):
        kernel = Kernel()
        kernel.add_process(compile_source(CORPUS["sieve"]).program)
        kernel.run()
        assert kernel.output(0) == EXPECTED_OUTPUT["sieve"]
        # at least code, globals, and stack pages were demand-loaded
        assert kernel.pagemap.stats.faults >= 3
        assert kernel.disk.copies == kernel.pagemap.stats.faults

    def test_two_processes_round_robin(self):
        kernel = Kernel(quantum=1500, hazard_mode=HazardMode.CHECKED)
        kernel.add_process(compile_source(CORPUS["sort"]).program)
        kernel.add_process(compile_source(CORPUS["scanner"]).program)
        kernel.run()
        assert kernel.output(0) == EXPECTED_OUTPUT["sort"]
        assert kernel.output(1) == EXPECTED_OUTPUT["scanner"]
        # preemption happened: more exceptions than the traps alone
        assert kernel.cpu.stats.exceptions > 10

    def test_processes_share_page_map_disjointly(self):
        kernel = Kernel(quantum=2000)
        kernel.add_process(compile_source(CORPUS["fib_iterative"]).program)
        kernel.add_process(compile_source(CORPUS["fib_iterative"]).program)
        kernel.run()
        assert kernel.output(0) == kernel.output(1) == EXPECTED_OUTPUT["fib_iterative"]
        # the PID insertion keeps their pages apart: every mapped page
        # belongs to exactly one frame
        frames = list(kernel.pagemap.entries.values())
        assert len(frames) == len(set(frames))

    def test_inputs_reach_processes(self):
        source = """
        program echo;
        var x: integer;
        begin read(x); writeln(x * 2) end.
        """
        kernel = Kernel(inputs=[21])
        kernel.add_process(compile_source(source).program)
        kernel.run()
        assert kernel.output(0) == [42]

    def test_process_isolation_via_segmentation(self):
        # a wild pointer (between the two regions) kills the process
        source = """
        program wild;
        var x: integer;
        begin
          writeln(1);
          x := 1073741824;  { 2^30: the dead middle of the space }
          read(x)           { unreachable: replaced below }
        end.
        """
        # craft: store THROUGH the wild address via the compiled store
        wild = """
        program wild;
        var a: array [0..1] of integer;
            i: integer;
        begin
          writeln(1);
          i := 536870912;
          a[i] := 5;
          writeln(2)
        end.
        """
        kernel = Kernel()
        kernel.add_process(compile_source(wild).program)
        kernel.run()
        assert kernel.output(0) == [1]  # killed before the second writeln
        assert kernel.process_state(0) == 2

    def test_user_cannot_reach_devices(self):
        # devices live in the supervisor physical window; a user store
        # aimed at the device address cannot even form a valid process
        # address (the segmented space tops out far below it), so the
        # process dies and the console device is never touched
        from repro.system.devices import DEV_BASE

        source = f"""
        program poke;
        var a: array [0..1] of integer;
            i: integer;
        begin
          writeln(1);
          i := {DEV_BASE};
          a[i - 8194] := 7;
          writeln(2)
        end.
        """
        kernel = Kernel()
        kernel.add_process(compile_source(source).program)
        kernel.run()
        assert kernel.output(0) == [1]  # killed at the wild store
        assert kernel.process_state(0) == 2

    def test_overflow_kills_process(self):
        source = """
        program boom;
        var x, i: integer;
        begin
          writeln(1);
          x := 1;
          for i := 1 to 40 do x := x + x;
          writeln(x)
        end.
        """
        kernel = Kernel()
        kernel.add_process(compile_source(source).program)
        kernel.run()
        assert kernel.output(0) == [1]
        assert kernel.process_state(0) == 2


class TestPageReplacement:
    SWEEP = """
    program bigsweep;
    const n = 2000;
    var a: array [0..1999] of integer;
        i, pass, checksum: integer;
    begin
      for pass := 1 to 3 do
        for i := 0 to n - 1 do
          a[i] := a[i] + pass * (i mod 7);
      checksum := 0;
      for i := 0 to n - 1 do checksum := checksum + a[i];
      writeln(checksum)
    end.
    """
    EXPECTED = sum(sum(p * (i % 7) for p in (1, 2, 3)) for i in range(2000))

    def test_working_set_larger_than_memory(self):
        """Demand paging with clock replacement: a 10-page working set
        completes correctly in 5 frames, with dirty pages written back."""
        kernel = Kernel(max_frames=5, hazard_mode=HazardMode.CHECKED)
        kernel.add_process(compile_source(self.SWEEP).program)
        kernel.run(200_000_000)
        assert kernel.output(0) == [self.EXPECTED]
        assert kernel.pagemap.stats.victims_suggested > 0
        assert kernel.disk.writebacks > 0

    def test_no_replacement_with_ample_memory(self):
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(compile_source(self.SWEEP).program)
        kernel.run(200_000_000)
        assert kernel.output(0) == [self.EXPECTED]
        assert kernel.pagemap.stats.victims_suggested == 0
        assert kernel.disk.writebacks == 0

    def test_fault_rate_falls_with_more_frames(self):
        faults = {}
        for frames in (5, 12):
            kernel = Kernel(max_frames=frames)
            kernel.add_process(compile_source(self.SWEEP).program)
            kernel.run(200_000_000)
            assert kernel.output(0) == [self.EXPECTED]
            faults[frames] = kernel.pagemap.stats.faults
        assert faults[12] <= faults[5]

    def test_clock_prefers_unreferenced_pages(self):
        from repro.system import PageMap

        pm = PageMap()
        for page in (1, 2, 3):
            pm.map_page(page, page + 10)
        pm.translate(2 << 8)  # reference page 2
        victim = pm.suggest_victim()
        assert victim & 0xFFFF != 2  # the referenced page survives

    def test_dirty_flag_in_victim_register(self):
        from repro.system import PageMap
        from repro.system.mapping import VICTIM_DIRTY

        pm = PageMap()
        pm.map_page(7, 3)
        pm.translate(7 << 8, is_write=True)
        pm.referenced[7] = False
        victim = pm.suggest_victim()
        assert victim & VICTIM_DIRTY
        assert victim & ~VICTIM_DIRTY == 7


class TestYield:
    def test_cooperative_switching_without_timer(self):
        # two processes; no quantum: they only switch on exit
        kernel = Kernel(quantum=0)
        kernel.add_process(compile_source(CORPUS["fib_iterative"]).program)
        kernel.add_process(compile_source(CORPUS["strings"]).program)
        kernel.run()
        assert kernel.output(0) == EXPECTED_OUTPUT["fib_iterative"]
        assert kernel.output(1) == EXPECTED_OUTPUT["strings"]


class TestFreeCycleDma:
    def test_transfer_completes_from_free_cycles(self):
        from repro.sim import Machine
        from repro.system import FreeCycleDma, run_with_dma

        compiled = compile_source(CORPUS["sieve"])
        machine = Machine(compiled.program)
        dma = FreeCycleDma(machine.memory)
        machine.memory.poke(0x100000, 0xDEAD)
        machine.memory.poke(0x100001, 0xBEEF)
        transfer = dma.enqueue(0x100000, 0x140000, 2)
        words, moved = run_with_dma(machine, dma)
        assert transfer.done and moved == 2
        assert machine.memory.peek(0x140000) == 0xDEAD
        assert machine.memory.peek(0x140001) == 0xBEEF
        assert machine.output  # the program still ran correctly

    def test_dma_only_uses_free_cycles(self):
        from repro.sim import Machine
        from repro.system import FreeCycleDma, run_with_dma

        compiled = compile_source(CORPUS["fib_iterative"])
        machine = Machine(compiled.program)
        dma = FreeCycleDma(machine.memory)
        dma.enqueue(0x100000, 0x140000, 1 << 20)  # more than available
        words, moved = run_with_dma(machine, dma)
        assert moved <= machine.stats.free_memory_cycles
        assert dma.cycles_used == moved
