"""Differential tests: the fast-path engine vs the reference stepper.

The contract of :mod:`repro.sim.fastpath` is bit-for-bit equivalence
with :meth:`repro.sim.cpu.Cpu.step` across every hazard mode: identical
registers, memory, output, statistics, and fault behaviour.  These
tests run the same programs through both and compare complete state
fingerprints.
"""

import pytest

from repro.compiler import compile_source
from repro.isa.encoding import encode
from repro.isa.pieces import MovImm
from repro.isa.registers import Reg
from repro.isa.words import InstructionWord
from repro.reorg import OptLevel
from repro.sim import HazardMode, HazardViolation, Machine, state_fingerprint
from repro.sim.machine import run_source
from repro.system.kernel import Kernel
from repro.workloads import CORPUS

#: a fast-running cross-section of the corpus (control flow, recursion,
#: byte/string handling, memory traffic, input consumption)
PROGRAMS = ("scanner", "strings", "sort", "calc", "fib_iterative")

MODES = (HazardMode.BARE, HazardMode.CHECKED, HazardMode.INTERLOCKED)


def _run_pair(program, mode, inputs=()):
    """Run fast and reference instances; return both machines."""
    machines = []
    for fast in (True, False):
        machine = Machine(program, hazard_mode=mode, inputs=list(inputs))
        machine.run(60_000_000, fast=fast)
        machines.append(machine)
    return machines


def _assert_identical(fast, ref):
    assert state_fingerprint(fast.cpu) == state_fingerprint(ref.cpu)
    assert fast.output == ref.output
    assert fast.char_output == ref.char_output
    assert fast.memory._words == ref.memory._words
    fstats, rstats = fast.memory.stats, ref.memory.stats
    assert (fstats.reads, fstats.writes, fstats.fetches) == (
        rstats.reads,
        rstats.writes,
        rstats.fetches,
    )


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("name", PROGRAMS)
def test_differential_corpus(name, mode):
    """Fast path and reference stepper agree on the workload corpus.

    ``INTERLOCKED`` runs naive code order (the hardware-interlock
    ablation's configuration); the other modes run scheduled code.
    """
    opt = OptLevel.NONE if mode is HazardMode.INTERLOCKED else OptLevel.BRANCH_DELAY
    program = compile_source(CORPUS[name], opt_level=opt).program
    fast, ref = _run_pair(program, mode, inputs=[7, 3, 9])
    _assert_identical(fast, ref)


HAZARD_SOURCE = """
        start:  mov #7, r1
                ld @val, r1
                mov r1, r2      ; reads r1 in its load delay slot
                trap #0
        val:    .word 42
"""


def test_checked_mode_raises_at_same_pc_through_batched_loop():
    """CHECKED still raises HazardViolation, at the same PC, when batched."""
    results = []
    for fast in (True, False):
        with pytest.raises(HazardViolation):
            run_source(HAZARD_SOURCE, hazard_mode=HazardMode.CHECKED)
        machine = Machine(
            __import__("repro.asm.assembler", fromlist=["assemble"]).assemble(
                HAZARD_SOURCE
            ),
            hazard_mode=HazardMode.CHECKED,
        )
        with pytest.raises(HazardViolation):
            machine.run(fast=fast)
        results.append(machine)
    fast_m, ref_m = results
    assert fast_m.cpu.pc == ref_m.cpu.pc
    assert state_fingerprint(fast_m.cpu) == state_fingerprint(ref_m.cpu)


READER_SOURCE = """
        start:  trap #3
                trap #1
                trap #3
                trap #1
                trap #3
                trap #1
                trap #0
"""


@pytest.mark.parametrize("fast", (True, False), ids=("fast", "reference"))
def test_input_queue_exhaustion_returns_zero(fast):
    """Trap #3 beyond the queued inputs reads zero (and popleft is O(1))."""
    from repro.asm.assembler import assemble

    machine = Machine(assemble(READER_SOURCE), inputs=[5])
    machine.run(fast=fast)
    assert machine.output == [5, 0, 0]
    assert len(machine.inputs) == 0


SELF_MODIFY_SOURCE = """
        start:  mov #0, r5
        loop:   mov #1, r1      ; overwritten with `movi #2,r1` mid-run
                trap #1
                ld @patch, r2
                nop
                st r2, @loop
                add r5, #1, r5
                blo r5, #2, loop
                nop
                trap #0
        patch:  .word 0
"""


def test_self_modifying_code_invalidates_compiled_handlers():
    """A store over an already-executed word takes effect identically."""
    from repro.asm.assembler import assemble

    program = assemble(SELF_MODIFY_SOURCE)
    patched_bits = encode(InstructionWord.single(MovImm(2, Reg(1))))
    machines = []
    for fast in (True, False):
        machine = Machine(program)
        machine.memory.poke(program.symbol("patch"), patched_bits)
        machine.run(fast=fast)
        machines.append(machine)
    fast_m, ref_m = machines
    assert fast_m.output == [1, 2]
    _assert_identical(fast_m, ref_m)


@pytest.mark.parametrize(
    "quantum,max_frames", ((0, None), (700, None), (500, 8)),
    ids=("run-to-exit", "preemptive", "paging-pressure"),
)
def test_kernel_differential(quantum, max_frames):
    """Batched Kernel.run is exact: steps, timer quanta, paging, output."""
    programs = [
        compile_source(CORPUS[name]).program for name in ("fib_iterative", "calc")
    ]
    kernels = []
    for fast in (True, False):
        kernel = Kernel(quantum=quantum, inputs=[5, 6], max_frames=max_frames)
        for program in programs:
            kernel.add_process(program)
        kernel.run(fast=fast)
        kernels.append(kernel)
    fast_k, ref_k = kernels
    assert state_fingerprint(fast_k.cpu) == state_fingerprint(ref_k.cpu)
    assert fast_k.steps_run == ref_k.steps_run
    assert fast_k.physical._words == ref_k.physical._words
    assert fast_k.pagemap.stats.__dict__ == ref_k.pagemap.stats.__dict__
    fstats, rstats = fast_k.physical.stats, ref_k.physical.stats
    assert (fstats.reads, fstats.writes, fstats.fetches) == (
        rstats.reads,
        rstats.writes,
        rstats.fetches,
    )
    for pid in range(len(programs)):
        assert fast_k.output(pid) == ref_k.output(pid)
        assert fast_k.process_state(pid) == ref_k.process_state(pid)
