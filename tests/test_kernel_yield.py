"""Cooperative scheduling: the SYS_YIELD monitor call.

Two hand-written assembly processes alternate voluntarily via
``trap #4``; their console writes must interleave in lockstep, proving
the context switch preserves every register across the voluntary
switch path too.
"""

from repro.asm import assemble
from repro.sim import HazardMode
from repro.system import Kernel, SYS_YIELD


def yielding_process(base: int, rounds: int) -> str:
    """Writes base+0, yields, base+1, yields, ... then exits."""
    return f"""
start:  mov #0, r8
loop:   movi #{base}, r1
        add r1, r8, r1
        trap #1
        trap #{SYS_YIELD}
        add r8, #1, r8
        blo r8, #{rounds}, loop
        nop
        trap #0
"""


class TestYieldInterleaving:
    def test_two_processes_alternate(self):
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(assemble(yielding_process(100, 5)))
        kernel.add_process(assemble(yielding_process(200, 5)))
        kernel.run()
        assert kernel.output(0) == [100, 101, 102, 103, 104]
        assert kernel.output(1) == [200, 201, 202, 203, 204]

    def test_interleaving_is_strict(self):
        """Record global write order through a shared console spy."""
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(assemble(yielding_process(100, 4)))
        kernel.add_process(assemble(yielding_process(200, 4)))
        order = []
        original = kernel.console.write_int

        def spy(value):
            order.append(kernel.console.current_pid)
            original(value)

        kernel.console.write_int = spy
        kernel.run()
        # strict alternation: 0, 1, 0, 1, ...
        assert order == [0, 1] * 4

    def test_yield_with_one_process_is_harmless(self):
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(assemble(yielding_process(50, 3)))
        kernel.run()
        assert kernel.output(0) == [50, 51, 52]

    def test_registers_survive_the_switch(self):
        """A process parks distinctive values in r8-r13 before yielding
        and checks them afterwards, printing 1 on success."""
        source = f"""
start:  movi #111, r8
        movi #112, r9
        movi #113, r10
        movi #114, r12
        movi #115, r13
        trap #{SYS_YIELD}
        bne r8, r9, fail      ; placeholder ordering uses real checks below
        nop
check:  movi #111, r1
        bne r8, r1, fail
        nop
        movi #112, r1
        bne r9, r1, fail
        nop
        movi #113, r1
        bne r10, r1, fail
        nop
        movi #114, r1
        bne r12, r1, fail
        nop
        movi #115, r1
        bne r13, r1, fail
        nop
        mov #1, r1
        trap #1
        trap #0
fail:   mov #0, r1
        trap #1
        trap #0
"""
        # fix the bogus first branch: r8 != r9 always, so route it to check
        source = source.replace("bne r8, r9, fail", "bne r8, r9, check")
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(assemble(source))
        kernel.add_process(assemble(yielding_process(90, 2)))
        kernel.run()
        assert kernel.output(0) == [1]
