"""Cooperative scheduling: the SYS_YIELD monitor call.

Two hand-written assembly processes alternate voluntarily via
``trap #4``; their console writes must interleave in lockstep, proving
the context switch preserves every register across the voluntary
switch path too.
"""

from repro.asm import assemble
from repro.sim import HazardMode
from repro.system import Kernel, SYS_YIELD


def yielding_process(base: int, rounds: int) -> str:
    """Writes base+0, yields, base+1, yields, ... then exits."""
    return f"""
start:  mov #0, r8
loop:   movi #{base}, r1
        add r1, r8, r1
        trap #1
        trap #{SYS_YIELD}
        add r8, #1, r8
        blo r8, #{rounds}, loop
        nop
        trap #0
"""


class TestYieldInterleaving:
    def test_two_processes_alternate(self):
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(assemble(yielding_process(100, 5)))
        kernel.add_process(assemble(yielding_process(200, 5)))
        kernel.run()
        assert kernel.output(0) == [100, 101, 102, 103, 104]
        assert kernel.output(1) == [200, 201, 202, 203, 204]

    def test_interleaving_is_strict(self):
        """Record global write order through a shared console spy."""
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(assemble(yielding_process(100, 4)))
        kernel.add_process(assemble(yielding_process(200, 4)))
        order = []
        original = kernel.console.write_int

        def spy(value):
            order.append(kernel.console.current_pid)
            original(value)

        kernel.console.write_int = spy
        kernel.run()
        # strict alternation: 0, 1, 0, 1, ...
        assert order == [0, 1] * 4

    def test_yield_with_one_process_is_harmless(self):
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(assemble(yielding_process(50, 3)))
        kernel.run()
        assert kernel.output(0) == [50, 51, 52]

    def test_registers_survive_the_switch(self):
        """A process parks distinctive values in r8-r13 before yielding
        and checks them afterwards, printing 1 on success."""
        source = f"""
start:  movi #111, r8
        movi #112, r9
        movi #113, r10
        movi #114, r12
        movi #115, r13
        trap #{SYS_YIELD}
        bne r8, r9, fail      ; placeholder ordering uses real checks below
        nop
check:  movi #111, r1
        bne r8, r1, fail
        nop
        movi #112, r1
        bne r9, r1, fail
        nop
        movi #113, r1
        bne r10, r1, fail
        nop
        movi #114, r1
        bne r12, r1, fail
        nop
        movi #115, r1
        bne r13, r1, fail
        nop
        mov #1, r1
        trap #1
        trap #0
fail:   mov #0, r1
        trap #1
        trap #0
"""
        # fix the bogus first branch: r8 != r9 always, so route it to check
        source = source.replace("bne r8, r9, fail", "bne r8, r9, check")
        kernel = Kernel(hazard_mode=HazardMode.CHECKED)
        kernel.add_process(assemble(source))
        kernel.add_process(assemble(yielding_process(90, 2)))
        kernel.run()
        assert kernel.output(0) == [1]


def paging_process(salt: int, pages: int) -> str:
    """Touches ``pages`` distinct pages (write then read-back) and
    prints the checksum -- steady page-fault traffic."""
    return f"""
start:  lim #4096, r10
        lim #256, r11
        movi #{salt}, r12
        mov #0, r8
        movi #{pages}, r9
wloop:  add r8, r12, r7
        st r7, 0(r10)
        add r10, r11, r10
        add r8, #1, r8
        blo r8, r9, wloop
        nop
        lim #4096, r10
        mov #0, r8
        mov #0, r7
rloop:  ld 0(r10), r6
        nop
        add r7, r6, r7
        add r10, r11, r10
        add r8, #1, r8
        blo r8, r9, rloop
        nop
        add r7, #0, r1
        trap #1
        trap #0
"""


class TestNestedExceptionPressure:
    """Timer interrupts queued behind traps and page faults: the
    kernel's software save/restore of the surprise register (and the
    three saved return addresses) must round-trip under every mix of
    voluntary switches, preemption, and demand paging."""

    def test_preemption_composes_with_voluntary_yield(self):
        # quantum short enough that timer interrupts land between the
        # yields; per-process output must be exactly the cooperative
        # sequence even though the interleaving is no longer strict
        kernel = Kernel(quantum=400)
        kernel.add_process(assemble(yielding_process(100, 12)))
        kernel.add_process(assemble(yielding_process(200, 12)))
        kernel.run()
        assert kernel.output(0) == [100 + i for i in range(12)]
        assert kernel.output(1) == [200 + i for i in range(12)]

    def test_preemption_during_demand_paging(self):
        # a tight frame pool keeps the pager evicting while the timer
        # preempts: interrupts are pended during handlers (interrupts
        # are forced off on exception entry), delivered after rfs, and
        # both checksums must still be exact
        kernel = Kernel(quantum=300, max_frames=8)
        kernel.add_process(assemble(paging_process(5, 12)))
        kernel.add_process(assemble(paging_process(9, 12)))
        kernel.run()
        assert kernel.output(0) == [sum(5 + i for i in range(12))]
        assert kernel.output(1) == [sum(9 + i for i in range(12))]

    def test_saved_surprise_state_survives_nesting_on_both_engines(self):
        # the same pressured run must be bit-identical on the threaded
        # fast path and the precise stepper -- the save areas are
        # ordinary mapped memory, so any divergence shows up here
        finals = {}
        for fast in (True, False):
            kernel = Kernel(quantum=300, max_frames=8)
            kernel.add_process(assemble(paging_process(5, 10)))
            kernel.add_process(assemble(yielding_process(90, 8)))
            kernel.run(fast=fast)
            finals[fast] = (
                kernel.output(0),
                kernel.output(1),
                kernel.cpu.stats.words,
                kernel.cpu.stats.exceptions,
            )
        assert finals[True] == finals[False]
