"""Instruction words and packing rules."""

import pytest

from repro.isa.operations import AluOp, Comparison
from repro.isa.pieces import (
    Absolute,
    Alu,
    CompareBranch,
    Displacement,
    Imm,
    Load,
    MovImm,
    Noop,
    SetCond,
    Store,
)
from repro.isa.registers import Reg
from repro.isa.words import (
    InstructionWord,
    PackingError,
    can_pack,
    canonical_alu,
    packable_form,
    packing_obstacle,
    words_from_pieces,
)

LD = Load(Displacement(Reg(14), 3), Reg(2))
ST = Store(Displacement(Reg(14), 0), Reg(5))
ADD = Alu(AluOp.ADD, Imm(1), Reg(4), Reg(4))


class TestPackingRules:
    def test_load_plus_alu_packs(self):
        assert can_pack(LD, ADD)

    def test_store_plus_alu_packs(self):
        assert can_pack(ST, ADD)

    def test_movi_packs(self):
        assert can_pack(LD, MovImm(200, Reg(4)))

    def test_absolute_addressing_rejected(self):
        assert not can_pack(Load(Absolute(100), Reg(2)), ADD)

    def test_long_displacement_rejected(self):
        far = Load(Displacement(Reg(14), 8), Reg(2))
        assert not can_pack(far, ADD)

    def test_negative_displacement_rejected(self):
        assert not can_pack(Load(Displacement(Reg(14), -1), Reg(2)), ADD)

    def test_immediate_second_source_rejected(self):
        bad = Alu(AluOp.ADD, Reg(4), Imm(1), Reg(4))
        assert not can_pack(LD, bad)

    def test_shift_with_register_source_packs(self):
        shift = Alu(AluOp.SLL, Reg(4), Imm(2), Reg(4))
        assert can_pack(LD, shift)

    def test_same_destination_rejected(self):
        clash = Alu(AluOp.ADD, Imm(1), Reg(4), Reg(2))  # writes the load dst
        assert packing_obstacle(LD, clash) == "both pieces write the same register"

    def test_flow_cannot_pack(self):
        branch = CompareBranch(Comparison.EQ, Reg(0), Reg(1), 5)
        assert not can_pack(LD, branch)

    def test_unpackable_opcode(self):
        ic = Alu(AluOp.IC, Reg(1), Imm(0), Reg(3))
        assert not can_pack(LD, ic)

    def test_setcond_not_in_alu_slot(self):
        setcond = SetCond(Comparison.EQ, Reg(1), Reg(2), Reg(3))
        assert not can_pack(LD, setcond)


class TestCanonicalForms:
    def test_commutative_swap(self):
        piece = Alu(AluOp.ADD, Reg(4), Imm(1), Reg(4))
        swapped = canonical_alu(piece)
        assert swapped == Alu(AluOp.ADD, Imm(1), Reg(4), Reg(4))

    def test_sub_becomes_rsub(self):
        piece = Alu(AluOp.SUB, Reg(4), Imm(1), Reg(4))
        assert canonical_alu(piece) == Alu(AluOp.RSUB, Imm(1), Reg(4), Reg(4))

    def test_register_operands_unchanged(self):
        piece = Alu(AluOp.SUB, Reg(4), Reg(5), Reg(6))
        assert canonical_alu(piece) is piece

    def test_packable_form_rescues_sub_immediate(self):
        piece = Alu(AluOp.SUB, Reg(4), Imm(1), Reg(4))
        form = packable_form(piece)
        assert form is not None
        assert can_pack(LD, form)

    def test_packable_form_rejects_flow(self):
        assert packable_form(CompareBranch(Comparison.EQ, Reg(0), Imm(0), 3)) is None

    def test_packable_form_semantics_preserved(self):
        from repro.isa.operations import alu_evaluate

        piece = Alu(AluOp.SUB, Reg(4), Imm(3), Reg(4))
        form = packable_form(piece)
        # original: r4 - 3; canonical rsub: s2 - s1 = r4 - 3
        assert alu_evaluate(piece.op, 10, 3) == alu_evaluate(form.op, 3, 10)


class TestInstructionWord:
    def test_empty_word_rejected(self):
        with pytest.raises(PackingError):
            InstructionWord()

    def test_single_routes_memory_to_mem_slot(self):
        word = InstructionWord.single(LD)
        assert word.mem is LD
        assert word.alu is None

    def test_single_routes_alu(self):
        word = InstructionWord.single(ADD)
        assert word.alu is ADD
        assert word.mem is None

    def test_packed_validates(self):
        with pytest.raises(PackingError):
            InstructionWord.packed(Load(Absolute(1), Reg(2)), ADD)

    def test_pieces_order_mem_first(self):
        word = InstructionWord.packed(LD, ADD)
        assert word.pieces == (LD, ADD)

    def test_uses_memory(self):
        assert InstructionWord.single(LD).uses_memory
        assert InstructionWord.packed(LD, ADD).uses_memory
        assert not InstructionWord.single(ADD).uses_memory
        assert not InstructionWord.nop().uses_memory

    def test_nop_detection(self):
        assert InstructionWord.nop().is_nop
        assert not InstructionWord.single(ADD).is_nop

    def test_flow_accessor(self):
        branch = CompareBranch(Comparison.EQ, Reg(0), Reg(1), 5)
        assert InstructionWord.single(branch).flow is branch
        assert InstructionWord.single(ADD).flow is None

    def test_reads_writes_union(self):
        word = InstructionWord.packed(LD, ADD)
        assert word.reads() == {Reg(14), Reg(4)}
        assert word.writes() == {Reg(2), Reg(4)}

    def test_words_from_pieces(self):
        words = words_from_pieces([LD, ADD, Noop()])
        assert len(words) == 3
        assert all(not w.is_packed for w in words)
