"""Assembler: parsing, two-pass resolution, directives, diagnostics."""

import pytest

from repro.asm import (
    AsmError,
    DuplicateSymbol,
    UndefinedSymbol,
    assemble,
    assemble_pieces,
    parse_integer,
)
from repro.isa.encoding import decode
from repro.isa.operations import AluOp, Comparison
from repro.isa.pieces import (
    Absolute,
    Alu,
    BaseIndex,
    BaseShifted,
    CompareBranch,
    Displacement,
    Imm,
    Jump,
    JumpIndirect,
    Load,
    LoadImm,
    MovImm,
    Rfs,
    Store,
    Trap,
    WriteSpecial,
)
from repro.isa.registers import Reg, SpecialReg


class TestParseInteger:
    @pytest.mark.parametrize(
        "text,value",
        [("42", 42), ("-7", -7), ("0x1F", 31), ("'a'", 97), ("'\\n'", 10), ("'\\0'", 0)],
    )
    def test_forms(self, text, value):
        assert parse_integer(text) == value

    def test_garbage(self):
        assert parse_integer("xyz") is None
        assert parse_integer("") is None


def first_piece(source):
    program = assemble(source)
    return program.fetch(min(program.instructions))


class TestInstructionParsing:
    def test_three_operand_alu(self):
        assert first_piece("add r1, r2, r3").pieces[0] == Alu(
            AluOp.ADD, Reg(1), Reg(2), Reg(3)
        )

    def test_immediate_operand(self):
        assert first_piece("sub #1, r2, r3").pieces[0] == Alu(
            AluOp.SUB, Imm(1), Reg(2), Reg(3)
        )

    def test_oversized_immediate_rejected(self):
        with pytest.raises(AsmError):
            assemble("add #16, r2, r3")

    def test_register_aliases(self):
        piece = first_piece("add sp, fp, ra").pieces[0]
        assert piece == Alu(AluOp.ADD, Reg(14), Reg(12), Reg(15))

    def test_mov_to_special(self):
        assert first_piece("mov r1, lo").pieces[0] == WriteSpecial(SpecialReg.LO, Reg(1))

    def test_mov_to_register(self):
        assert first_piece("mov r1, r2").pieces[0] == Alu(AluOp.MOV, Reg(1), Imm(0), Reg(2))

    def test_movi(self):
        assert first_piece("movi #200, r1").pieces[0] == MovImm(200, Reg(1))

    def test_lim(self):
        assert first_piece("lim #-100000, r1").pieces[0] == LoadImm(-100000, Reg(1))

    def test_addressing_modes(self):
        assert first_piece("ld 4(sp), r1").pieces[0].addr == Displacement(Reg(14), 4)
        assert first_piece("ld -4(sp), r1").pieces[0].addr == Displacement(Reg(14), -4)
        assert first_piece("ld (r2+r3), r1").pieces[0].addr == BaseIndex(Reg(2), Reg(3))
        assert first_piece("ld (r2>>2), r1").pieces[0].addr == BaseShifted(Reg(2), 2)
        assert first_piece("ld @99, r1").pieces[0].addr == Absolute(99)

    def test_store(self):
        piece = first_piece("st r1, 0(sp)").pieces[0]
        assert isinstance(piece, Store) and piece.src == Reg(1)

    def test_set_conditionally(self):
        piece = first_piece("slt r1, r2, r3").pieces[0]
        assert piece.cond is Comparison.LT

    def test_sett_avoids_store_collision(self):
        piece = first_piece("sett r1, r2, r3").pieces[0]
        assert piece.cond is Comparison.T

    def test_branches(self):
        src = "start: bhi r1, #3, start"
        piece = first_piece(src).pieces[0]
        assert piece.cond is Comparison.HI and piece.target == 0

    def test_jumps(self):
        assert first_piece("start: jmp start").pieces[0] == Jump(0)
        assert first_piece("start: jal start").pieces[0] == Jump(0, link=True)
        assert first_piece("jmpr ra").pieces[0] == JumpIndirect(Reg(15))

    def test_trap_and_rfs(self):
        assert first_piece("trap #99").pieces[0] == Trap(99)
        assert first_piece("rfs").pieces[0] == Rfs()

    def test_packed_syntax(self):
        word = first_piece("{ ld 0(sp), r1 | add #1, sp, sp }")
        assert word.is_packed

    def test_insert_byte_both_spellings(self):
        a = first_piece("ic r3, r2").pieces[0]
        b = first_piece("ic lo, r3, r2").pieces[0]
        assert a == b == Alu(AluOp.IC, Reg(3), Imm(0), Reg(2))

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("frobnicate r1")


class TestDirectives:
    def test_org_and_labels(self):
        program = assemble(".org 100\nstart: nop")
        assert program.symbols["start"] == 100

    def test_word_data(self):
        program = assemble("d: .word 1, -1, 'a'")
        base = program.symbol("d")
        assert program.memory[base] == 1
        assert program.memory[base + 1] == 0xFFFFFFFF
        assert program.memory[base + 2] == 97

    def test_word_symbolic(self):
        program = assemble("a: .word b\nb: .word 7")
        assert program.memory[program.symbol("a")] == program.symbol("b")

    def test_space(self):
        program = assemble("buf: .space 3\nend: nop")
        assert program.symbol("end") == program.symbol("buf") + 3

    def test_equ(self):
        program = assemble(".equ K, 7\nstart: mov #7, r1")
        assert program.symbols["K"] == 7

    def test_ascii_packs_four_per_word(self):
        program = assemble('s: .ascii "abcde"')
        base = program.symbol("s")
        assert program.memory[base] == 0x64636261  # 'abcd', low byte first
        assert program.memory[base + 1] == 0x65

    def test_duplicate_label(self):
        with pytest.raises(DuplicateSymbol):
            assemble("a: nop\na: nop")

    def test_undefined_symbol(self):
        with pytest.raises(AsmError):
            assemble("jmp nowhere")


class TestTwoPass:
    def test_forward_reference(self):
        program = assemble("start: jmp later\nnop\nlater: nop")
        assert program.fetch(0).pieces[0] == Jump(2)

    def test_memory_image_decodes(self):
        program = assemble("start: add r1, r2, r3\nnop")
        for addr in program.instructions:
            assert decode(program.memory[addr], addr) == program.fetch(addr)

    def test_entry_defaults_to_start(self):
        program = assemble(".org 5\nstart: nop")
        assert program.entry == 5

    def test_entry_falls_back_to_lowest(self):
        program = assemble(".org 7\nmain: nop")
        assert program.entry == 7


class TestAssemblePieces:
    def test_labeled_stream(self):
        stream = assemble_pieces("a: nop\nadd r1, r2, r3\nb: nop")
        assert stream[0][0] == "a"
        assert stream[1][0] is None
        assert stream[2][0] == "b"

    def test_rejects_directives(self):
        with pytest.raises(AsmError):
            assemble_pieces(".word 1")

    def test_rejects_trailing_label(self):
        with pytest.raises(AsmError):
            assemble_pieces("nop\nend:")
