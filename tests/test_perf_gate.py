"""The deterministic cycle gate and the paper-claims validator.

Includes the two CI-facing acceptance checks: a seeded >2% cycle
regression is caught and named, and the shipped ``PERF_BASELINE.json``
passes against a fresh collection.
"""

import json
import os

import pytest

from repro.perf import baseline as perf_baseline
from repro.perf import claims
from repro.perf.baseline import Regression, compare, render_gate

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SHIPPED_BASELINE = os.path.join(REPO_ROOT, "PERF_BASELINE.json")


def _doc(benchmarks):
    return perf_baseline.baseline_document(benchmarks)


class TestCompare:
    BASE = {"sort": {"cycles": 10_000, "load_stalls": 100}}

    def test_seeded_regression_is_caught(self):
        """A 3% cycle growth (past the 2% threshold) fails the gate."""
        current = {"sort": {"cycles": 10_300, "load_stalls": 100}}
        regressions = compare(_doc(self.BASE), current)
        assert [(r.benchmark, r.counter) for r in regressions] == [("sort", "cycles")]
        assert regressions[0].growth == pytest.approx(0.03)

    def test_growth_within_threshold_passes(self):
        current = {"sort": {"cycles": 10_199, "load_stalls": 101}}
        assert compare(_doc(self.BASE), current) == []

    def test_shrinking_counters_never_fail(self):
        current = {"sort": {"cycles": 5_000, "load_stalls": 0}}
        assert compare(_doc(self.BASE), current) == []

    def test_counter_appearing_from_zero_fails(self):
        base = {"sort": {"cycles": 10_000, "load_stalls": 0}}
        current = {"sort": {"cycles": 10_000, "load_stalls": 5}}
        regressions = compare(_doc(base), current)
        assert regressions and regressions[0].counter == "load_stalls"
        assert regressions[0].growth == float("inf")

    def test_worst_offender_sorted_first_and_named(self):
        base = {
            "sort": {"cycles": 10_000, "load_stalls": 100},
            "calc": {"cycles": 1_000, "load_stalls": 10},
        }
        current = {
            "sort": {"cycles": 10_500, "load_stalls": 100},   # +5%
            "calc": {"cycles": 1_200, "load_stalls": 10},     # +20% -- worst
        }
        regressions = compare(_doc(base), current)
        assert regressions[0].benchmark == "calc"
        message = render_gate(regressions)
        assert "worst offender: calc: cycles 1000 -> 1200 (+20.00%)" in message
        assert "FAIL" in message

    def test_new_workload_ignored(self):
        current = dict(self.BASE["sort"] and {"sort": {"cycles": 10_000, "load_stalls": 100}})
        current["fresh"] = {"cycles": 1}
        assert compare(_doc(self.BASE), current) == []

    def test_pass_message(self):
        assert "ok" in render_gate([])


class TestRegressionRendering:
    def test_percentages(self):
        r = Regression("sort", "cycles", 100, 103)
        assert "+3.00%" in r.render()
        assert Regression("sort", "cycles", 0, 5).render().endswith("(new)")


class TestShippedBaseline:
    def test_baseline_file_is_committed_and_wellformed(self):
        doc = perf_baseline.load_baseline(SHIPPED_BASELINE)
        assert doc["version"] == perf_baseline.BASELINE_VERSION
        assert set(doc["counters"]) == set(perf_baseline.GATED_COUNTERS)
        assert doc["benchmarks"], "baseline must cover the quick corpus"
        for counters in doc["benchmarks"].values():
            assert set(counters) == set(perf_baseline.GATED_COUNTERS)

    def test_fresh_collection_passes_the_shipped_gate(self):
        """The acceptance check CI runs: collect now, gate vs committed."""
        current = perf_baseline.collect_cycles(jobs=1)
        baseline = perf_baseline.load_baseline(SHIPPED_BASELINE)
        regressions = compare(baseline, current)
        assert regressions == [], render_gate(regressions)

    def test_collection_is_deterministic_across_sharding(self):
        subset = ("sort", "calc", "strings")
        assert perf_baseline.collect_cycles(subset, jobs=1) == perf_baseline.collect_cycles(
            subset, jobs=2
        )


class TestBaselineRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        perf_baseline.write_baseline(path, {"sort": {"cycles": 42}})
        doc = perf_baseline.load_baseline(path)
        assert doc["benchmarks"] == {"sort": {"cycles": 42}}
        # canonical formatting: trailing newline, sorted keys
        text = open(path).read()
        assert text.endswith("\n")
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"


class TestClaims:
    def test_validator_passes_on_synthetic_in_band_counters(self):
        groups = {
            "immediates": {"imm4_coverage_pct": 70.0, "movi_coverage_pct": 96.0},
            "control": {"cc_savings_operators_pct": 1.5},
            "memory": {"free_cycle_pct": 40.0},
        }
        results = claims.validate(groups)
        assert claims.all_ok(results)

    @pytest.mark.parametrize(
        "patch,failing",
        [
            ({"immediates": {"imm4_coverage_pct": 50.0, "movi_coverage_pct": 96.0}}, "table1-imm4"),
            ({"immediates": {"imm4_coverage_pct": 70.0, "movi_coverage_pct": 90.0}}, "table1-movi"),
            ({"memory": {"free_cycle_pct": 20.0}}, "free-cycles"),
            ({"control": {"cc_savings_operators_pct": 5.0}}, "table3-cc"),
        ],
    )
    def test_each_band_fails_independently(self, patch, failing):
        groups = {
            "immediates": {"imm4_coverage_pct": 70.0, "movi_coverage_pct": 96.0},
            "control": {"cc_savings_operators_pct": 1.5},
            "memory": {"free_cycle_pct": 40.0},
        }
        groups.update(patch)
        results = claims.validate(groups)
        bad = [r.name for r in results if not r.ok]
        assert bad == [failing]
        assert failing in claims.render(results)

    def test_render_mentions_every_claim(self):
        results = claims.validate(
            {
                "immediates": {"imm4_coverage_pct": 70.0, "movi_coverage_pct": 96.0},
                "control": {"cc_savings_operators_pct": 1.5},
                "memory": {"free_cycle_pct": 40.0},
            }
        )
        text = claims.render(results)
        for name in ("table1-imm4", "table1-movi", "free-cycles", "table3-cc"):
            assert name in text
        assert "all paper claims hold" in text
