"""Multiprecision arithmetic without carry bits (paper section 2.3.3).

"Carry bits are mainly used for multiprecision arithmetic. ... For more
common occasional use, multiprecision arithmetic can be synthesized
with 31-bit words."  The runtime routines hold 31 value bits per limb;
the carry out of a limb operation is simply bit 31 of the 32-bit
result -- no condition-code carry flag anywhere.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble_pieces
from repro.compiler.runtime import MPADD_SOURCE, MPSUB_SOURCE
from repro.reorg import OptLevel, reorganize
from repro.sim import HazardMode, Machine

LIMB = 1 << 31

HARNESS = """
start:  lim #{hi1_hi}, r2
        sll r2, #8, r2
        sll r2, #8, r2
        lim #{hi1_lo}, r6
        or r2, r6, r2
        lim #{lo1_hi}, r3
        sll r3, #8, r3
        sll r3, #8, r3
        lim #{lo1_lo}, r6
        or r3, r6, r3
        lim #{hi2_hi}, r4
        sll r4, #8, r4
        sll r4, #8, r4
        lim #{hi2_lo}, r6
        or r4, r6, r4
        lim #{lo2_hi}, r5
        sll r5, #8, r5
        sll r5, #8, r5
        lim #{lo2_lo}, r6
        or r5, r6, r5
        jal {routine}
        mov r1, r8
        mov r8, r1
        trap #1
        mov r2, r1
        trap #1
        trap #0
"""


def call(routine, hi1, lo1, hi2, lo2):
    def split(v):
        return (v >> 16) & 0xFFFF, v & 0xFFFF

    fields = {}
    for name, value in (("hi1", hi1), ("lo1", lo1), ("hi2", hi2), ("lo2", lo2)):
        fields[f"{name}_hi"], fields[f"{name}_lo"] = split(value)
    source = HARNESS.format(routine=routine, **fields)
    body = MPADD_SOURCE if routine == "__mpadd" else MPSUB_SOURCE
    stream = assemble_pieces(source + body)
    program = reorganize(stream, OptLevel.BRANCH_DELAY).to_program(entry_symbol="start")
    machine = Machine(program, hazard_mode=HazardMode.CHECKED)
    machine.run(10_000)
    high, low = machine.output
    return high & 0xFFFFFFFF, low & 0xFFFFFFFF


def compose(hi, lo):
    return hi * LIMB + lo


class TestMultiprecisionAdd:
    @pytest.mark.parametrize(
        "a,b",
        [
            (0, 0),
            (1, 1),
            (LIMB - 1, 1),            # carry out of the low limb
            (LIMB - 1, LIMB - 1),
            ((LIMB - 1) * LIMB, LIMB),
            (123456789012345678 % (LIMB * LIMB), 42),
        ],
    )
    def test_known_values(self, a, b):
        hi, lo = call("__mpadd", a // LIMB, a % LIMB, b // LIMB, b % LIMB)
        total = (a + b) % (LIMB * LIMB)
        assert compose(hi & (LIMB - 1), lo) == total

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, LIMB * LIMB - 1), st.integers(0, LIMB * LIMB - 1))
    def test_random_62_bit_addition(self, a, b):
        hi, lo = call("__mpadd", a // LIMB, a % LIMB, b // LIMB, b % LIMB)
        assert lo < LIMB, "the low limb keeps 31 bits"
        assert compose(hi & (LIMB - 1), lo) == (a + b) % (LIMB * LIMB)


class TestMultiprecisionSub:
    @pytest.mark.parametrize(
        "a,b",
        [
            (5, 3),
            (LIMB, 1),                # borrow from the high limb
            (LIMB * 5 + 2, LIMB * 2 + 7),
            (LIMB * LIMB - 1, 1),
        ],
    )
    def test_known_values(self, a, b):
        hi, lo = call("__mpsub", a // LIMB, a % LIMB, b // LIMB, b % LIMB)
        assert compose(hi & (LIMB - 1), lo) == (a - b) % (LIMB * LIMB)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, LIMB * LIMB - 1), st.integers(0, LIMB * LIMB - 1))
    def test_random_62_bit_subtraction(self, a, b):
        hi, lo = call("__mpsub", a // LIMB, a % LIMB, b // LIMB, b % LIMB)
        assert lo < LIMB
        assert compose(hi & (LIMB - 1), lo) == (a - b) % (LIMB * LIMB)
