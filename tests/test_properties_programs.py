"""Whole-program property test: random mini-Pascal programs versus a
Python interpretation of the same statements.

Statements cover assignment, arithmetic, conditionals, and bounded for
loops over a fixed set of integer globals; every generated program is
compiled at full optimization and run under the CHECKED simulator.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompileOptions, compile_source
from repro.isa.bits import s32, u32
from repro.sim import HazardMode, Machine

VARS = ("va", "vb", "vc", "vd")


def wrap(value: int) -> int:
    return s32(u32(value))


# -- expressions (reused shape from the expression-level test) --------------


def expr_strategy(depth: int):
    leaf = st.one_of(
        st.integers(0, 99).map(lambda v: (str(v), lambda env, v=v: v)),
        st.sampled_from(VARS).map(lambda n: (n, lambda env, n=n: env[n])),
    )
    if depth == 0:
        return leaf

    def combine(children):
        op, (ls, lf), (rs, rf) = children
        if op == "+":
            return (f"({ls} + {rs})", lambda env: wrap(lf(env) + rf(env)))
        if op == "-":
            return (f"({ls} - {rs})", lambda env: wrap(lf(env) - rf(env)))
        return (f"({ls} * {rs})", lambda env: wrap(lf(env) * rf(env)))

    sub = expr_strategy(depth - 1)
    return st.one_of(
        leaf, st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(combine)
    )


def cond_strategy(depth: int):
    relop = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
    ops = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    return st.tuples(relop, expr_strategy(depth), expr_strategy(depth)).map(
        lambda t: (
            f"({t[1][0]} {t[0]} {t[2][0]})",
            lambda env, t=t: ops[t[0]](t[1][1](env), t[2][1](env)),
        )
    )


# -- statements ---------------------------------------------------------------


def stmt_strategy(depth: int):
    assign = st.tuples(st.sampled_from(VARS), expr_strategy(2)).map(
        lambda t: (
            f"{t[0]} := {t[1][0]};",
            lambda env, t=t: env.__setitem__(t[0], t[1][1](env)),
        )
    )
    if depth == 0:
        return assign

    sub = st.lists(stmt_strategy(depth - 1), min_size=1, max_size=3)

    def make_if(children):
        (cs, cf), then_stmts, else_stmts = children

        def run(env):
            for _s, f in then_stmts if cf(env) else else_stmts:
                f(env)

        then_text = "\n".join(s for s, _f in then_stmts)
        else_text = "\n".join(s for s, _f in else_stmts)
        text = (
            f"if {cs} then begin\n{then_text}\nend else begin\n{else_text}\nend;"
        )
        return (text, run)

    def make_for(children):
        # each nesting depth owns its loop variable: Pascal forbids
        # assigning a for-variable inside its own loop, and nested
        # loops sharing one variable would not terminate
        limit, body = children
        var = f"vi{depth}"

        def run(env):
            for i in range(limit + 1):
                env[var] = i
                for _s, f in body:
                    f(env)
            env[var] = limit + 1

        body_text = "\n".join(s for s, _f in body)
        text = f"for {var} := 0 to {limit} do begin\n{body_text}\nend;"
        return (text, run)

    if_stmt = st.tuples(cond_strategy(1), sub, sub).map(make_if)
    for_stmt = st.tuples(st.integers(0, 6), sub).map(make_for)
    return st.one_of(assign, if_stmt, for_stmt)


programs = st.lists(stmt_strategy(2), min_size=1, max_size=6)
initial_values = st.tuples(*[st.integers(-50, 50) for _ in VARS])


@settings(max_examples=25, deadline=None)
@given(programs, initial_values)
def test_random_programs_match_python(stmts, initials):
    env = dict(zip(VARS, initials))
    env.update(vi0=0, vi1=0, vi2=0)
    body = "\n".join(s for s, _f in stmts)
    inits = "\n".join(f"  {name} := {value};" for name, value in zip(VARS, initials))
    source = f"""
    program rnd;
    var va, vb, vc, vd, vi0, vi1, vi2: integer;
    begin
{inits}
{body}
      writeln(va); writeln(vb); writeln(vc); writeln(vd)
    end.
    """
    for _s, f in stmts:
        f(env)
    expected = [env[name] for name in VARS]

    compiled = compile_source(source)
    machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
    machine.run(10_000_000)
    assert machine.output == expected, source


@settings(max_examples=10, deadline=None)
@given(programs, initial_values)
def test_random_programs_agree_across_options(stmts, initials):
    """The same random program under no-regalloc and byte layout."""
    from repro.compiler import LayoutStrategy

    body = "\n".join(s for s, _f in stmts)
    inits = "\n".join(f"  {name} := {value};" for name, value in zip(VARS, initials))
    source = f"""
    program rnd;
    var va, vb, vc, vd, vi0, vi1, vi2: integer;
    begin
{inits}
{body}
      writeln(va); writeln(vb); writeln(vc); writeln(vd)
    end.
    """
    outputs = []
    for options in (
        CompileOptions(register_allocation=False),
        CompileOptions(layout=LayoutStrategy.BYTE_ALLOCATED),
        CompileOptions(use_global_pointer=False),
    ):
        compiled = compile_source(source, options)
        machine = Machine(compiled.program, hazard_mode=HazardMode.CHECKED)
        machine.run(10_000_000)
        outputs.append(machine.output)
    assert outputs[0] == outputs[1] == outputs[2], source
