"""The memory-mapped device bus."""

import pytest

from repro.sim import BusError, PhysicalMemory, PrivilegeViolation
from repro.system.devices import (
    CONSOLE_CHAR,
    CONSOLE_IN,
    CONSOLE_INT,
    DEV_BASE,
    DEV_WORDS,
    DISK_FRAME,
    DISK_PAGE,
    DISK_STORE,
    HALT,
    INT_SOURCE,
    INT_TIMER,
    OUT_PID,
    PM_ENTRY,
    PM_FAULT,
    PM_INDEX,
    PM_VICTIM,
    Console,
    DeviceBus,
    Disk,
    InterruptController,
    MachineHalt,
)
from repro.system.mapping import ENTRY_VALID, PAGE_WORDS, PageMap


@pytest.fixture
def bus():
    physical = PhysicalMemory(1 << 16)
    console = Console()
    pagemap = PageMap()
    disk = Disk(physical)
    interrupts = InterruptController()
    bus = DeviceBus(console, pagemap, disk, interrupts)
    bus._physical = physical  # for test access
    return bus


class TestConsole:
    def test_tagged_output(self, bus):
        bus.write(OUT_PID, 3)
        bus.write(CONSOLE_INT, 42)
        bus.write(OUT_PID, 5)
        bus.write(CONSOLE_INT, 0xFFFFFFFF)
        assert bus.console.outputs[3] == [42]
        assert bus.console.outputs[5] == [-1]  # signed view

    def test_char_output(self, bus):
        bus.write(CONSOLE_CHAR, ord("h"))
        bus.write(CONSOLE_CHAR, ord("i"))
        assert bus.console.text(0) == "hi"

    def test_input_queue(self, bus):
        bus.console.inputs.extend([7, 8])
        assert bus.read(CONSOLE_IN) == 7
        assert bus.read(CONSOLE_IN) == 8
        assert bus.read(CONSOLE_IN) == 0  # exhausted


class TestInterruptController:
    def test_acknowledge_order_and_clear(self, bus):
        cleared = []
        bus.interrupts.attach(lambda: cleared.append(True))
        bus.interrupts.raise_source(INT_TIMER)
        bus.interrupts.raise_source(2)
        assert bus.read(INT_SOURCE) == INT_TIMER
        assert not cleared  # another source still pending
        assert bus.read(INT_SOURCE) == 2
        assert cleared  # line dropped when the queue drained

    def test_spurious_acknowledge(self, bus):
        assert bus.read(INT_SOURCE) == 0

    def test_duplicate_sources_coalesce(self, bus):
        bus.interrupts.raise_source(INT_TIMER)
        bus.interrupts.raise_source(INT_TIMER)
        bus.read(INT_SOURCE)
        assert bus.read(INT_SOURCE) == 0


class TestPageMapRegisters:
    def test_select_and_program_entry(self, bus):
        bus.write(PM_INDEX, 9)
        bus.write(PM_ENTRY, 3 | ENTRY_VALID)
        assert bus.read(PM_ENTRY) == 3 | ENTRY_VALID
        assert bus.pagemap.translate(9 * PAGE_WORDS) == 3 * PAGE_WORDS

    def test_fault_register_protocol(self, bus):
        from repro.sim import PageFault

        with pytest.raises(PageFault):
            bus.pagemap.translate(1234)
        assert bus.read(PM_FAULT) == 1234
        assert bus.read(PM_FAULT) == 0xFFFFFFFF

    def test_victim_register(self, bus):
        bus.pagemap.map_page(4, 7)
        bus.pagemap.referenced[4] = False
        assert bus.read(PM_VICTIM) & 0xFFFF == 4


class TestDisk:
    def test_page_in_and_write_back(self, bus):
        physical = bus.disk.physical
        bus.disk.register_image(0, {3: 99})
        bus.write(DISK_PAGE, 0)
        bus.write(DISK_FRAME, 5)
        assert physical.peek(5 * PAGE_WORDS + 3) == 99
        # modify the frame and write it back
        physical.poke(5 * PAGE_WORDS + 3, 123)
        bus.write(DISK_STORE, 5)
        bus.write(DISK_FRAME, 6)  # page it in elsewhere
        assert physical.peek(6 * PAGE_WORDS + 3) == 123

    def test_demand_zero(self, bus):
        physical = bus.disk.physical
        physical.poke(8 * PAGE_WORDS, 0xBEEF)
        bus.write(DISK_PAGE, 400)  # never registered
        bus.write(DISK_FRAME, 8)
        assert physical.peek(8 * PAGE_WORDS) == 0


class TestProtectionAndDecoding:
    def test_user_access_rejected(self, bus):
        with pytest.raises(PrivilegeViolation):
            bus.read(CONSOLE_IN, supervisor=False)
        with pytest.raises(PrivilegeViolation):
            bus.write(CONSOLE_INT, 1, supervisor=False)

    def test_halt_register(self, bus):
        with pytest.raises(MachineHalt):
            bus.write(HALT, 0)

    def test_unmapped_register_is_bus_error(self, bus):
        with pytest.raises(BusError):
            bus.read(CONSOLE_INT)  # write-only
        with pytest.raises(BusError):
            bus.write(DEV_BASE + DEV_WORDS - 1, 0)

    def test_claims_window(self, bus):
        assert bus.claims(DEV_BASE)
        assert bus.claims(DEV_BASE + DEV_WORDS - 1)
        assert not bus.claims(DEV_BASE - 1)
        assert not bus.claims(DEV_BASE + DEV_WORDS)
