# The local loop, matched to CI job-for-job (see .github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test perf-gate jit-differential claims bench

## check: everything a push must survive -- lint + tier-1 tests + perf
## gate (cycles + dispatch floor) + the three-tier jit differential
check: lint test perf-gate jit-differential

lint:
	ruff check .

test:
	$(PYTHON) -m pytest -x -q

## perf-gate: the blocking deterministic gates -- cycle counts, the
## dispatch-count throughput floor, and the paper claims
perf-gate:
	$(PYTHON) tools/bench_report.py cycles
	$(PYTHON) tools/bench_report.py dispatch
	$(PYTHON) -m repro.perf claims

## jit-differential: corpus profiles byte-identical across all tiers,
## chaos green on every engine, and the hot-loop speedup floor
jit-differential:
	$(PYTHON) -m repro.perf corpus --engine fast > /tmp/profiles-fast.jsonl
	$(PYTHON) -m repro.perf corpus --engine jit > /tmp/profiles-jit.jsonl
	cmp /tmp/profiles-fast.jsonl /tmp/profiles-jit.jsonl
	$(PYTHON) -m repro.chaos run --seed 7 --engine all
	$(PYTHON) -m pytest -q benchmarks/test_jit_speedup.py

claims:
	$(PYTHON) -m repro.perf claims

## bench: the noisy wall-clock backstop (nightly in CI)
bench:
	$(PYTHON) tools/bench_report.py compare
