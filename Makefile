# The local loop, matched to CI job-for-job (see .github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test perf-gate claims bench

## check: everything a push must survive -- lint + tier-1 tests + perf gate
check: lint test perf-gate

lint:
	ruff check .

test:
	$(PYTHON) -m pytest -x -q

## perf-gate: the blocking deterministic cycle-count gate + paper claims
perf-gate:
	$(PYTHON) tools/bench_report.py cycles
	$(PYTHON) -m repro.perf claims

claims:
	$(PYTHON) -m repro.perf claims

## bench: the noisy wall-clock backstop (nightly in CI)
bench:
	$(PYTHON) tools/bench_report.py compare
